"""Sweep execution: serial and multiprocess executors plus the runner.

The runner turns a :class:`~repro.sweep.spec.SweepSpec` into
:class:`~repro.sweep.records.RunRecord`s through a pluggable *executor*:

* :class:`SerialExecutor` — in-process loop; zero overhead, the baseline;
* :class:`PoolExecutor` — ``multiprocessing.Pool`` with chunked dispatch.
  Runs are embarrassingly parallel (independent simulations), so the pool
  simply maps the picklable :class:`RunSpec`s over worker processes; each
  worker rebuilds (and memoizes) compiled workloads from their specs — see
  :mod:`repro.sweep.builders`.

Because every run's seed is a pure function of ``(master_seed, point_index,
seed_index)`` and workload construction is deterministic, both executors
produce *bit-identical* records for the same spec; ``tests/test_sweep.py``
enforces this.

Resume: pass ``resume_from`` (a JSON path or loaded
:class:`~repro.sweep.records.SweepResult`) and the runner re-executes only
runs whose records are missing, then merges.  Aggregates of a resumed sweep
equal a fresh run's exactly (see :mod:`repro.sweep.records`).

Checkpointing: the runner consumes records through the executors' streaming
``imap_unordered`` interface, saving to ``save_path`` every
``checkpoint_every`` completed records (atomic temp-file + ``os.replace``)
and — whenever ``save_path`` is set — on any executor error or interruption,
so long sweeps survive being killed mid-executor-pass and resume from the
last checkpoint.  Passing ``store`` instead (see :mod:`repro.store`) makes
persistence *record-incremental*: outcomes append to a durable record store
as they complete, checkpoints become fsync-batched flushes whose cost does
not grow with sweep size, and a completed pass seals the store.

Fault tolerance (supervision): both executors accept a
:class:`~repro.sweep.spec.RetryPolicy`; :class:`PoolExecutor` additionally
accepts a per-run wall-clock ``run_timeout``.  Passing either arms the
*supervised* path — run attempts that raise are retried in place, timed-out
or lost chunks (a hung run, a worker process that died mid-chunk) tear the
fleet down, requeue only the unfinished runs, and rebuild — and runs that
exhaust their attempt budget are quarantined as
:class:`~repro.sweep.records.FailedRun`s in ``SweepResult.failed_runs``
instead of aborting the sweep.  Without either argument both executors keep
their historical raise-through behavior (and the pool its zero-overhead
``Pool.map``/``imap_unordered`` dispatch).
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import os
import shutil
import tempfile
import time
import traceback as traceback_module
import warnings
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from math import ceil
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List, \
    Optional, Sequence, Tuple, Union

if TYPE_CHECKING:                             # pragma: no cover - typing only
    from ..store.base import RecordStore as RecordStoreLike

from . import faults
from .builders import build_compiled_workload
from .records import FailedRun, RunRecord, SweepResult
from .spec import EnsembleSpec, RetryPolicy, RunSpec, SweepSpec, \
    group_into_ensembles

__all__ = ["ExecutorStats", "SerialExecutor", "PoolExecutor", "SweepPass",
           "SweepProgress", "SweepRunner", "execute_ensemble", "execute_run",
           "execute_work", "run_sweeps"]

#: Progress/throughput log channel (enable with the standard logging config,
#: e.g. ``logging.getLogger("repro.sweep").setLevel(logging.INFO)``).
logger = logging.getLogger("repro.sweep")

#: One executor outcome: a completed record or a quarantined failure.
RunOutcome = Union[RunRecord, FailedRun]

#: One executor work unit: a single run or a batched ensemble of runs.
WorkItem = Union[RunSpec, EnsembleSpec]


def _member_runs(item: WorkItem) -> List[RunSpec]:
    """The individual runs behind a work item (one for a plain run)."""
    return list(item.runs) if isinstance(item, EnsembleSpec) else [item]


@dataclass
class ExecutorStats:
    """Supervision counters of one executor pass (reset per pass).

    ``retries`` counts in-process retry attempts the executor itself could
    observe (every serial retry; for the pool, only parent-side re-dispatches
    — a worker's in-worker retries happen across the process boundary).
    ``requeues`` counts runs re-dispatched after a deadline expiry or a chunk
    failure, ``rebuilds`` counts fleet teardowns.  Surfaced in the runner's
    checkpoint progress lines and the service's job heartbeats, so a long
    sweep reports degradation while it happens instead of at the post-mortem.

    ``rebuild_victims`` attributes each fleet rebuild: one entry per
    teardown, listing the run ids of the chunks whose deadline *expired*
    (the suspects — innocent in-flight chunks are requeued but not listed).
    The service's per-job circuit breaker folds these back onto jobs: a job
    whose runs keep appearing here is poisoning the shared fleet.
    """

    retries: int = 0
    requeues: int = 0
    rebuilds: int = 0
    rebuild_victims: List[List[str]] = field(default_factory=list)


@dataclass(frozen=True)
class SweepProgress:
    """One streaming progress snapshot (see :meth:`SweepRunner.run`)."""

    completed: int          #: outcomes consumed this pass (records + failed)
    total: int              #: pending work this pass (after resume skipping)
    records: int            #: records in the merged result so far
    failed: int             #: quarantined runs in the merged result so far
    runs_per_s: float       #: this pass's completion throughput
    checkpointed: bool      #: True when this outcome triggered a checkpoint


def _as_outcomes(result) -> List[RunOutcome]:
    """Normalize a work-item result: one outcome, or an ensemble's list."""
    return result if isinstance(result, list) else [result]


def execute_run(run: RunSpec) -> RunRecord:
    """Simulate one run and summarize it (the unit of executor work).

    Module-level so :mod:`multiprocessing` can pickle it by reference; builds
    the compiled workload through the per-process cache.
    """
    from ..sim.runtime import PIMRuntime
    faults.maybe_fail_run(run.run_id)     # chaos-harness hook; no-op unarmed
    compiled = build_compiled_workload(run.workload)
    result = PIMRuntime(compiled, run.runtime_config()).run()
    return RunRecord.from_simulation(run, result)


def execute_ensemble(ensemble: EnsembleSpec,
                     policy: Optional[RetryPolicy] = None,
                     first_attempt: int = 1) -> List[RunOutcome]:
    """Simulate one batched ensemble; one outcome per member run, in order.

    The batch path (:func:`repro.sim.ensemble.run_ensemble`) amortizes
    activity generation and physics derivation across the members and is
    bit-identical to per-run execution, so records are interchangeable with
    :func:`execute_run`'s.  Supervision stays *per member*: each member's
    chaos hook fires under its own ``run_id`` before the batch (fault firing
    is a pure function of ``(plan, run_id, attempt)``, so the probe matches
    what :func:`execute_run` would see), and members whose hook fires — or
    every member, if the batch itself raises — fall back to per-run
    execution: retried and quarantined under ``policy`` when one is given,
    raising through otherwise (the unsupervised serial semantics).
    """
    from ..sim.ensemble import run_ensemble
    runs = list(ensemble.runs)
    healthy: List[RunSpec] = []
    fallback: List[RunSpec] = []
    faults.set_current_attempt(first_attempt)
    try:
        for run in runs:
            try:
                faults.maybe_fail_run(run.run_id)
            except Exception:
                fallback.append(run)
            else:
                healthy.append(run)
    finally:
        faults.set_current_attempt(1)
    outcomes: Dict[str, RunOutcome] = {}
    if healthy:
        try:
            compiled = build_compiled_workload(healthy[0].workload)
            results = run_ensemble(
                compiled, [run.runtime_config() for run in healthy])
        except Exception as error:
            logger.warning(
                "ensemble %s: batched execution failed (%r); falling back "
                "to per-run execution for its %d member(s)",
                ensemble.run_id, error, len(healthy))
            fallback.extend(healthy)
        else:
            for run, result in zip(healthy, results):
                outcomes[run.run_id] = RunRecord.from_simulation(run, result)
    for run in fallback:
        if policy is None:
            outcomes[run.run_id] = execute_run(run)
        else:
            outcomes[run.run_id] = _attempt_run(
                execute_run, run, first_attempt, policy)
    return [outcomes[run.run_id] for run in runs]


def execute_work(item: WorkItem) -> Union[RunRecord, List[RunOutcome]]:
    """Executor work dispatch: a plain run, or a batched ensemble of runs.

    Module-level (picklable by reference) so the pool executors can map it;
    consumers flatten the per-ensemble outcome lists back into run records.
    """
    if isinstance(item, EnsembleSpec):
        return execute_ensemble(item)
    return execute_run(item)


def _attempt_run(fn: Callable[[RunSpec], RunRecord], run: WorkItem,
                 first_attempt: int, policy: RetryPolicy,
                 on_retry: Optional[Callable[[], None]] = None,
                 ) -> Union[RunOutcome, List[RunOutcome]]:
    """Execute one work item under a retry policy, from ``first_attempt``.

    Retries exceptions in place (with the policy's backoff, jittered per
    ``run_id`` when the policy says so) and returns a :class:`FailedRun` when
    the attempt budget is exhausted.  Shared by the serial executor and the
    pool workers, so serial and pool sweeps quarantine identically.  An
    :class:`EnsembleSpec` delegates to :func:`execute_ensemble`, which applies
    the same retry/quarantine semantics per *member* and returns a list of
    outcomes.  ``on_retry`` (when observable — serial execution) is called
    once per re-attempt so the executor's stats can count them.
    """
    if isinstance(run, EnsembleSpec):
        return execute_ensemble(run, policy=policy, first_attempt=first_attempt)
    attempt = first_attempt
    while True:
        if attempt > first_attempt and on_retry is not None:
            on_retry()
        delay = policy.delay_before(attempt, run.run_id)
        if delay > 0:
            time.sleep(delay)
        faults.set_current_attempt(attempt)
        try:
            return fn(run)
        except Exception as error:
            logger.warning("run %s attempt %d/%d failed: %r", run.run_id,
                           attempt, policy.max_attempts, error)
            if attempt >= policy.max_attempts:
                # The final attempt's traceback rides along (bounded tail)
                # so quarantined runs stay diagnosable from the checkpoint;
                # with a chaos plan armed, so does the fault attribution.
                return FailedRun.from_run(
                    run, repr(error), attempts=attempt,
                    traceback=traceback_module.format_exc(),
                    fault=faults.describe_run_faults(run.run_id, attempt))
            attempt += 1
        finally:
            faults.set_current_attempt(1)


class SerialExecutor:
    """Run every simulation in the calling process, in spec order.

    With a :class:`~repro.sweep.spec.RetryPolicy`, failed attempts are
    retried and exhausted runs yielded as :class:`FailedRun`s — the same
    quarantine semantics as the supervised pool (a hung run cannot be
    interrupted in-process, so wall-clock timeouts are pool-only).  Without
    one, exceptions propagate as they always have.
    """

    def __init__(self, retry_policy: Optional[RetryPolicy] = None) -> None:
        self.retry_policy = retry_policy
        #: supervision counters of the most recent pass (see ExecutorStats).
        self.stats = ExecutorStats()

    def map(self, fn: Callable[[RunSpec], RunRecord],
            runs: Sequence[WorkItem]) -> List[RunOutcome]:
        return list(self.imap_unordered(fn, runs))

    def imap_unordered(self, fn: Callable[[RunSpec], RunRecord],
                       runs: Sequence[WorkItem]) -> Iterator[RunOutcome]:
        """Yield records one by one as they complete (spec order here).

        Ensemble work items flatten into their per-member outcomes in place.
        """
        self.stats = ExecutorStats()
        if self.retry_policy is None:
            for run in runs:
                yield from _as_outcomes(fn(run))
            return

        def count_retry() -> None:
            self.stats.retries += 1

        for run in runs:
            yield from _as_outcomes(_attempt_run(fn, run, 1, self.retry_policy,
                                                 on_retry=count_retry))


def _apply_chunk(args) -> List[RunRecord]:
    """Worker-side chunk evaluation (top-level so it pickles by reference)."""
    fn, chunk = args
    return [fn(run) for run in chunk]


def _apply_supervised_chunk(args) -> List[RunOutcome]:
    """Worker-side supervised chunk: per-run retry loop + quarantine.

    ``items`` carries ``(run, first_attempt)`` pairs — the supervisor bumps
    ``first_attempt`` when it requeues a run after a timeout or worker death,
    so the total attempt budget spans pool rebuilds.
    """
    fn, items, policy = args
    return [_attempt_run(fn, run, first_attempt, policy)
            for run, first_attempt in items]


def _attach_store_initializer(directory: str, record_events: bool) -> None:
    """Pool-worker initializer: attach the shared physics store.

    Top-level so it pickles by reference under any start method; runs once
    per worker process before the first chunk.
    """
    from ..sim.level_cache import attach_shared_store
    attach_shared_store(directory, record_events=record_events)


class PoolExecutor:
    """Chunked ``multiprocessing.Pool`` dispatch over worker processes.

    ``processes`` defaults to the machine's CPU count; ``chunksize`` defaults
    to ``ceil(n_runs / (4 * processes))`` so each worker receives a handful of
    chunks (amortizing IPC without starving the tail).  Chunks are
    *workload-aligned* — a chunk never spans two distinct
    :class:`~repro.sweep.spec.WorkloadSpec`s — so a worker only constructs the
    workloads of the chunks it actually processes: distinct workloads build in
    parallel across workers, with duplicate builds bounded by the number of
    chunks per workload.

    ``prebuild=True`` instead constructs each distinct workload once in the
    parent before the pool starts (serially, but with zero duplicate builds);
    forked workers then inherit every compiled image via the per-process
    cache.  Prefer it when a single expensive workload dominates the sweep.
    Under non-``fork`` start methods prebuilding can only warm the parent —
    workers rebuild on first use, and the executor emits a ``RuntimeWarning``
    to say so.

    ``start_method`` defaults to the platform default — ``fork`` on Linux.
    With ``spawn``, workers import :mod:`repro.sweep.builders` fresh: the
    built-in ``"model"``/``"synthetic"`` builders are available, but a custom
    builder registered from a script is not — register it at import time of a
    module the workers also import, or stick with ``fork``.

    ``shared_cache_dir`` arms the cross-worker physics store
    (:mod:`repro.sim.shared_store`): every worker attaches the directory as
    its level-cache backend at initializer time, so the fleet derives each
    per-(group, level) physics entry once instead of once per worker, and
    attaches everything else as read-only ``np.memmap`` views.  Pass a path
    (created if missing, left in place) or ``"auto"`` for a temporary
    directory created per executor pass and removed afterwards.  Works under
    ``fork`` and ``spawn`` alike — the store is process-neutral by design.
    ``shared_cache_events=False`` turns off the store's per-entry reuse
    audit log (``stats.jsonl``) — recommended for long-lived persistent
    store directories that do not need the cross-worker accounting.

    ``retry_policy`` / ``run_timeout`` arm the *supervised* dispatch path.
    ``multiprocessing.Pool`` silently loses a chunk when the worker running
    it dies (the pool respawns the worker but the in-flight task's result
    never arrives), so supervision is deadline-based: chunks are dispatched
    lazily (never more in flight than workers, so a dispatched chunk is
    actually executing) with a wall-clock deadline of ``run_timeout`` seconds
    per run; an expired chunk — hung run or dead worker alike — tears the
    fleet down, requeues its runs as singletons with their attempt count
    bumped, requeues the innocent in-flight chunks unchanged, and rebuilds
    the pool.  Exceptions raised *inside* a worker are retried in-worker
    without any teardown.  Runs exhausting ``retry_policy.max_attempts``
    (default: 3 with ``run_timeout`` alone, since hung runs are usually
    transient) come back as :class:`~repro.sweep.records.FailedRun`s.
    Detecting kills/hangs requires ``run_timeout``; ``retry_policy`` alone
    only supervises raised exceptions.
    """

    def __init__(self, processes: Optional[int] = None,
                 chunksize: Optional[int] = None,
                 start_method: Optional[str] = None,
                 prebuild: bool = False,
                 shared_cache_dir: Optional[str] = None,
                 shared_cache_events: bool = True,
                 retry_policy: Optional[RetryPolicy] = None,
                 run_timeout: Optional[float] = None) -> None:
        if processes is not None and processes <= 0:
            raise ValueError("processes must be positive")
        if run_timeout is not None and run_timeout <= 0:
            raise ValueError("run_timeout must be positive seconds")
        self.processes = processes
        self.chunksize = chunksize
        self.start_method = start_method
        self.prebuild = prebuild
        self.shared_cache_dir = shared_cache_dir
        self.shared_cache_events = shared_cache_events
        self.retry_policy = retry_policy
        self.run_timeout = run_timeout
        #: supervision counters of the most recent pass.  Parent-side only:
        #: ``requeues`` and ``rebuilds`` are exact; in-worker retries are
        #: invisible across the process boundary and count 0 here.
        self.stats = ExecutorStats()

    @property
    def supervised(self) -> bool:
        return self.retry_policy is not None or self.run_timeout is not None

    def _plan(self, runs: List[WorkItem]):
        """(context, processes, workload-aligned chunks) for a work list."""
        processes = self.processes or (os.cpu_count() or 1)
        processes = min(processes, len(runs))
        chunksize = self.chunksize or max(1, ceil(len(runs) / (4 * processes)))

        # Workload-aligned chunking (expand() emits each workload's runs
        # contiguously, so this groups without reordering results).
        chunks: List[List[RunSpec]] = []
        for _, group in itertools.groupby(runs, key=lambda run: run.workload):
            group = list(group)
            for start in range(0, len(group), chunksize):
                chunks.append(group[start:start + chunksize])
        return multiprocessing.get_context(self.start_method), processes, chunks

    def _maybe_prebuild(self, context, runs: Sequence[RunSpec]) -> None:
        """Warm the parent's workload cache before the pool starts.

        With the ``fork`` start method workers inherit every prebuilt image.
        Other start methods (``spawn``, ``forkserver``) cannot inherit the
        parent's memory, so prebuilding only warms the *parent* — each worker
        still rebuilds its workloads on first use; a ``RuntimeWarning`` makes
        that visible instead of silently dropping the requested behaviour.
        """
        if not self.prebuild:
            return
        for workload in dict.fromkeys(run.workload for run in runs):
            build_compiled_workload(workload)
        method = context.get_start_method()
        if method != "fork":
            warnings.warn(
                f"PoolExecutor(prebuild=True) under the {method!r} start "
                "method only warms the parent process: workers cannot inherit "
                "the compiled-workload cache and will rebuild their workloads "
                "on first use", RuntimeWarning, stacklevel=3)

    @contextmanager
    def _shared_dir(self):
        """Resolve ``shared_cache_dir`` for one executor pass.

        ``"auto"`` creates a tempdir removed when the pass ends; an explicit
        path is created if missing and left in place.
        """
        shared_dir, created = None, False
        if self.shared_cache_dir == "auto":
            shared_dir, created = tempfile.mkdtemp(
                prefix="repro-physics-"), True
        elif self.shared_cache_dir is not None:
            os.makedirs(self.shared_cache_dir, exist_ok=True)
            shared_dir = self.shared_cache_dir
        try:
            yield shared_dir
        finally:
            if created:
                shutil.rmtree(shared_dir, ignore_errors=True)

    def _make_pool(self, context, processes: int, shared_dir: Optional[str]):
        """A worker pool with the shared physics store (if any) attached."""
        pool_kwargs = {} if shared_dir is None else {
            "initializer": _attach_store_initializer,
            "initargs": (shared_dir, self.shared_cache_events)}
        return context.Pool(processes=processes, **pool_kwargs)

    @contextmanager
    def _pool(self, context, processes: int):
        """One-shot pool for the unsupervised dispatch paths."""
        with self._shared_dir() as shared_dir:
            pool = self._make_pool(context, processes, shared_dir)
            try:
                yield pool
            finally:
                pool.terminate()
                pool.join()

    def _supervised_imap(self, fn: Callable[[RunSpec], RunRecord],
                         runs: List[WorkItem]) -> Iterator[RunOutcome]:
        """Supervised streaming dispatch (see class docstring).

        The invariant that makes per-chunk deadlines meaningful: at most
        ``processes`` chunks are ever in flight, so every dispatched chunk
        holds a worker and its deadline (``run_timeout`` x chunk length,
        plus the policy's backoff allowance) bounds real execution, not
        queue wait.
        """
        policy = self.retry_policy or RetryPolicy()
        self.stats = ExecutorStats()
        context, processes, chunks = self._plan(runs)
        self._maybe_prebuild(context, runs)
        with self._shared_dir() as shared_dir:
            pool = self._make_pool(context, processes, shared_dir)
            # Each queue entry is one chunk: [(run, first_attempt), ...].
            queue = deque([(run, 1) for run in chunk] for chunk in chunks)
            in_flight: List[tuple] = []       # (handle, items, deadline)
            rebuilds = 0
            try:
                while queue or in_flight:
                    while queue and len(in_flight) < processes:
                        items = queue.popleft()
                        handle = pool.apply_async(
                            _apply_supervised_chunk, ((fn, items, policy),))
                        deadline = None
                        if self.run_timeout is not None:
                            # An ensemble item is one dispatch but n_runs
                            # simulations, so its deadline scales with the
                            # member count (getattr: plain runs count as 1).
                            # Backoff allowance uses the policy's worst case
                            # (jittered delays vary per run).
                            budget = sum(
                                (self.run_timeout * policy.max_attempts
                                 + sum(policy.max_delay_before(a) for a in
                                       range(first, policy.max_attempts + 1)))
                                * getattr(item, "n_runs", 1)
                                for item, first in items)
                            deadline = time.monotonic() + budget
                        in_flight.append((handle, items, deadline))
                    in_flight[0][0].wait(0.02)
                    ready, still = [], []
                    for entry in in_flight:
                        (ready if entry[0].ready() else still).append(entry)
                    in_flight = still
                    requeue_single: List[Tuple[RunSpec, int]] = []
                    for handle, items, _ in ready:
                        try:
                            chunk_results = handle.get()
                        except Exception as error:
                            # The chunk call itself failed (e.g. the result
                            # did not unpickle) — charge every run an attempt.
                            logger.warning(
                                "supervised chunk of %d item(s) failed to "
                                "return: %r", len(items), error)
                            chunk_traceback = traceback_module.format_exc()
                            for item, first in items:
                                for run in _member_runs(item):
                                    if first >= policy.max_attempts:
                                        yield FailedRun.from_run(
                                            run, repr(error), attempts=first,
                                            traceback=chunk_traceback,
                                            fault=faults.describe_run_faults(
                                                run.run_id, first))
                                    else:
                                        requeue_single.append((run, first + 1))
                        else:
                            for item_result in chunk_results:
                                yield from _as_outcomes(item_result)
                    now = time.monotonic()
                    expired = [e for e in in_flight
                               if e[2] is not None and now > e[2]]
                    if expired:
                        # A hung run or a dead worker: the pool cannot tell
                        # us which, and a lost chunk would never come back —
                        # tear the fleet down and requeue what is unfinished.
                        rebuilds += 1
                        self.stats.rebuilds = rebuilds
                        self.stats.rebuild_victims.append(
                            [run.run_id for entry in expired
                             for item, _ in entry[1]
                             for run in _member_runs(item)])
                        logger.warning(
                            "sweep pool: %d chunk(s) exceeded their deadline "
                            "(hung run or dead worker); rebuilding fleet "
                            "(rebuild #%d) and requeueing %d in-flight "
                            "chunk(s)", len(expired), rebuilds, len(in_flight))
                        pool.terminate()
                        pool.join()
                        expired_ids = {id(e) for e in expired}
                        for entry in in_flight:
                            _, items, _ = entry
                            if id(entry) not in expired_ids:
                                queue.append(items)     # innocent: as-is
                                continue
                            # Expired ensembles expand into their member
                            # runs: each member requeues (or quarantines)
                            # individually, like the singleton requeue below.
                            for item, first in items:
                                for run in _member_runs(item):
                                    if first >= policy.max_attempts:
                                        yield FailedRun.from_run(
                                            run,
                                            f"timed out or lost with a dead "
                                            f"worker after {first} attempt(s) "
                                            f"(run_timeout="
                                            f"{self.run_timeout}s)",
                                            attempts=first,
                                            fault=faults.describe_run_faults(
                                                run.run_id, first))
                                    else:
                                        requeue_single.append((run, first + 1))
                        in_flight = []
                        pool = self._make_pool(context, processes, shared_dir)
                    # Expired runs requeue as singletons so one bad run no
                    # longer drags chunk-mates through every retry.
                    self.stats.requeues += len(requeue_single)
                    queue.extend([pair] for pair in requeue_single)
            finally:
                pool.terminate()
                pool.join()

    def map(self, fn: Callable[[RunSpec], RunRecord],
            runs: Sequence[WorkItem]) -> List[RunOutcome]:
        runs = list(runs)
        if not runs:
            return []
        if self.supervised:
            # Re-establish spec order: supervision completes out of order.
            # Outcomes are per member run (ensembles flatten in the stream),
            # so index by member id and group each item's outcomes in place.
            index = {run.run_id: slot for slot, item in enumerate(runs)
                     for run in _member_runs(item)}
            out: List[List[RunOutcome]] = [[] for _ in runs]
            for outcome in self._supervised_imap(fn, runs):
                out[index[outcome.run_id]].append(outcome)
            return [record for slot in out for record in slot]
        context, processes, chunks = self._plan(runs)
        self._maybe_prebuild(context, runs)
        with self._pool(context, processes) as pool:
            nested = pool.map(_apply_chunk, [(fn, chunk) for chunk in chunks],
                              chunksize=1)
        return [record for chunk_records in nested
                for item_result in chunk_records
                for record in _as_outcomes(item_result)]

    def imap_unordered(self, fn: Callable[[RunSpec], RunRecord],
                       runs: Sequence[WorkItem]) -> Iterator[RunOutcome]:
        """Yield records as worker chunks complete, in completion order.

        The streaming counterpart of :meth:`map`:
        ``multiprocessing.Pool.imap_unordered`` over the same workload-aligned
        chunks, so the consumer (:meth:`SweepRunner.run`) can checkpoint
        completed records while later chunks are still executing.  Record
        order is *not* the spec order — sweep aggregation is order-free by
        contract.
        """
        runs = list(runs)
        if not runs:
            return
        if self.supervised:
            yield from self._supervised_imap(fn, runs)
            return
        context, processes, chunks = self._plan(runs)
        self._maybe_prebuild(context, runs)
        with self._pool(context, processes) as pool:
            for chunk_records in pool.imap_unordered(
                    _apply_chunk, [(fn, chunk) for chunk in chunks],
                    chunksize=1):
                for item_result in chunk_records:
                    yield from _as_outcomes(item_result)


Executor = Union[SerialExecutor, PoolExecutor]


class SweepPass:
    """One persistence-managed execution pass over a sweep's pending work.

    The decomposition of :meth:`SweepRunner.run` into explicit phases:
    :meth:`prepare` (expand the spec, merge/validate resumed records, open
    the store, compute the pending work items), :meth:`consume` (per-outcome
    bookkeeping, quarantine and checkpoint flushing) and
    :meth:`finalize`/:meth:`summarize` (persist, seal a complete pass,
    report).  :meth:`SweepRunner.run` is a thin loop over these phases; the
    service daemon drives them directly so it can interleave work units from
    *several* jobs onto one shared executor pass while every job keeps its
    own independent resume/checkpoint/seal lifecycle — library and service
    execution share one code path and cannot drift apart.
    """

    def __init__(self, runner: "SweepRunner",
                 resume_from: Union[None, str, SweepResult] = None,
                 save_path: Optional[str] = None,
                 checkpoint_every: Optional[int] = None,
                 progress: Optional[Callable[[SweepProgress], None]] = None,
                 store: Union[None, str, "RecordStoreLike"] = None) -> None:
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be a positive record count")
        if checkpoint_every is not None and save_path is None \
                and store is None:
            raise ValueError("checkpoint_every requires save_path or store — "
                             "there is nowhere to write the checkpoints")
        if store is not None and save_path is not None:
            raise ValueError(
                "pass either save_path (legacy single-JSON persistence) or "
                "store (record-store persistence), not both — one "
                "persistence authority per pass")
        self.runner = runner
        self.spec = runner.spec
        self.executor = runner.executor
        self.resume_from = resume_from
        self.save_path = save_path
        self.checkpoint_every = checkpoint_every
        self.progress = progress
        self.store = store
        self.record_store: Optional["RecordStoreLike"] = None
        self.store_opened_here = False
        self.result: Optional[SweepResult] = None
        self.work_fn: Callable = execute_run
        self.runs: List[RunSpec] = []
        self.pending: List[RunSpec] = []
        self.pending_items: Sequence[WorkItem] = []
        self.completed = 0
        self._since_checkpoint = 0
        self._started = 0.0
        self._finalized = False

    # ------------------------------------------------------------------ #
    # phase 1: resume-merge and work planning
    # ------------------------------------------------------------------ #
    def prepare(self) -> Sequence[WorkItem]:
        """Expand, resume, open persistence; returns the pending work items."""
        runner = self.runner
        self.runs = self.spec.expand()
        by_id = {run.run_id: run for run in self.runs}

        if self.store is not None:
            from ..store import RecordStore, open_store  # lazy: import cycle
            self.store_opened_here = not isinstance(self.store, RecordStore)
            self.record_store = open_store(self.store, spec=self.spec)

        prior: List[RunRecord] = []
        if self.resume_from is not None:
            loaded = SweepResult.load_resumable(self.resume_from) \
                if isinstance(self.resume_from, str) else self.resume_from
            if loaded.failed_runs:
                logger.info(
                    "sweep %s: retrying %d previously quarantined run(s) "
                    "from the resumed checkpoint", self.spec.name,
                    len(loaded.failed_runs))
            prior = runner._validated_prior(loaded.records, by_id)
        if self.record_store is not None:
            if prior:
                seeded = self.record_store.seed_from(prior)
                if seeded:
                    self.record_store.flush()
                    logger.info(
                        "sweep %s: seeded %d record(s) from %s into the %s "
                        "store (migration resume)", self.spec.name, seeded,
                        self.resume_from if isinstance(self.resume_from, str)
                        else "the in-memory result", self.record_store.kind)
            # The store is the persistence authority: what it holds (its own
            # prior content plus anything just seeded) is the resume set.
            prior = runner._validated_prior(
                self.record_store.iter_records(), by_id)

        done = {record.run_id for record in prior}
        self.pending = [run for run in self.runs if run.run_id not in done]
        self.result = SweepResult(spec=self.spec, records=list(prior))
        self.work_fn = execute_run
        self.pending_items = self.pending
        if runner.ensembles and self.pending:
            cap = 16 if runner.ensembles is True else int(runner.ensembles)
            self.pending_items = group_into_ensembles(self.pending,
                                                      max_members=cap)
            self.work_fn = execute_work
        self._started = time.perf_counter()
        return self.pending_items

    # ------------------------------------------------------------------ #
    # phase 2: per-outcome consumption
    # ------------------------------------------------------------------ #
    def consume(self, record: RunOutcome) -> SweepProgress:
        """Fold one flat executor outcome in; checkpoint when due.

        Returns the progress snapshot (taken *after* any checkpoint flush it
        triggered, so ``checkpointed=True`` means the records are durable)
        and forwards it to the ``progress`` callback when one is set.
        """
        if isinstance(record, FailedRun):
            self.result.failed_runs.append(record)
            if self.record_store is not None:
                self.record_store.append_failed(record)
            logger.warning(
                "sweep %s: run %s quarantined after %d "
                "attempt(s): %s", self.spec.name, record.run_id,
                record.attempts, record.error)
        else:
            self.result.add(record)
            if self.record_store is not None:
                self.record_store.append(record)
        self._since_checkpoint += 1
        self.completed += 1
        elapsed = time.perf_counter() - self._started
        rate = self.completed / elapsed if elapsed > 0 else 0.0
        checkpointed = (
            (self.save_path is not None or self.record_store is not None)
            and self.checkpoint_every is not None
            and self._since_checkpoint >= self.checkpoint_every)
        if checkpointed:
            if self.save_path is not None:
                self.result.save(self.save_path)
            if self.record_store is not None:
                self.record_store.flush()
            self._since_checkpoint = 0
            stats = getattr(self.executor, "stats", None) \
                or ExecutorStats()
            logger.info(
                "sweep %s: checkpoint at %d/%d runs (%.2f runs/s, "
                "%d failed, %d retried, %d requeued, %d fleet "
                "rebuild(s))", self.spec.name, self.completed,
                len(self.pending), rate, len(self.result.failed_runs),
                stats.retries, stats.requeues, stats.rebuilds)
        snapshot = SweepProgress(
            completed=self.completed, total=len(self.pending),
            records=len(self.result.records),
            failed=len(self.result.failed_runs),
            runs_per_s=rate, checkpointed=checkpointed)
        if self.progress is not None:
            self.progress(snapshot)
        return snapshot

    # ------------------------------------------------------------------ #
    # phase 3: persistence finalization and reporting
    # ------------------------------------------------------------------ #
    @property
    def complete(self) -> bool:
        """Every run of the spec has a record (failed runs do not count)."""
        return self.result is not None \
            and len(self.result.records) == len(self.runs)

    def finalize(self, stopped: bool) -> None:
        """Persist whatever completed; seal the store on a full pass.

        Idempotent, and safe after a mid-pass exception: the final result on
        success, the freshest checkpoint on an executor error, interruption
        or a deliberate drain (``stopped=True`` never seals).
        """
        if self._finalized or self.result is None:
            return
        self._finalized = True
        if self.save_path is not None:
            self.result.save(self.save_path)
        if self.record_store is not None:
            try:
                self.record_store.flush()
                if not stopped and len(self.result.records) == len(self.runs):
                    # Every run of the spec has a record: the sweep is
                    # complete, and the seal rejects stray late appends.
                    self.record_store.seal()
            finally:
                if self.store_opened_here:
                    self.record_store.close()

    def summarize(self) -> SweepResult:
        """Final logs + canonical record order; returns the merged result."""
        if self.completed:
            elapsed = time.perf_counter() - self._started
            logger.info("sweep %s: %d runs in %.2fs (%.2f runs/s)",
                        self.spec.name, self.completed, elapsed,
                        self.completed / elapsed if elapsed > 0 else 0.0)
        if self.result.failed_runs:
            logger.warning(
                "sweep %s: completed with %d quarantined run(s): %s",
                self.spec.name, len(self.result.failed_runs),
                ", ".join(f.run_id for f in self.result.failed_runs))
        self.result.records = self.result.sorted_records()
        return self.result


class SweepRunner:
    """Expands a :class:`SweepSpec` and drives an executor over its runs.

    ``ensembles`` switches the executor work unit from single runs to
    :class:`~repro.sweep.spec.EnsembleSpec` batches: pending runs sharing a
    grid point's physics (same workload, horizon and flip statistics — see
    :func:`~repro.sweep.spec.batch_key`) execute through the batched
    ensemble engine, which amortizes activity generation and physics
    derivation across members while producing records bit-identical to
    per-run execution.  ``True`` caps batches at 16 members; an integer sets
    the cap.  Resume, checkpointing, retry and quarantine semantics are
    unchanged and stay per member run.
    """

    def __init__(self, spec: SweepSpec, executor: Optional[Executor] = None,
                 ensembles: Union[bool, int] = False) -> None:
        self.spec = spec
        self.executor = executor or SerialExecutor()
        self.ensembles = ensembles

    def _validated_prior(self, records: Iterable[RunRecord],
                         by_id: Dict[str, RunSpec]) -> List[RunRecord]:
        """Resumed records that belong to this spec, derivation-checked.

        A record whose stored seed or grid point disagrees with this spec's
        derivation (a different ``master_seed``, or an edited grid reusing
        the same sweep name) raises rather than silently mixing ensembles;
        records of runs the spec no longer contains are dropped.
        """
        prior: List[RunRecord] = []
        for record in records:
            expected = by_id.get(record.run_id)
            if expected is None:
                continue
            if record.seed != expected.seed:
                raise ValueError(
                    f"resumed record {record.run_id!r} was produced with "
                    f"seed {record.seed}, but this spec derives "
                    f"{expected.seed} — refusing to mix ensembles")
            if record.point_key != expected.point_key:
                raise ValueError(
                    f"resumed record {record.run_id!r} was produced at "
                    f"grid point {dict(record.point_key)}, but this spec "
                    f"places it at {dict(expected.point_key)} — the grid "
                    f"changed; refusing to mix sweeps")
            prior.append(record)
        return prior

    def run(self, resume_from: Union[None, str, SweepResult] = None,
            save_path: Optional[str] = None,
            checkpoint_every: Optional[int] = None,
            progress: Optional[Callable[[SweepProgress], None]] = None,
            should_stop: Optional[Callable[[], bool]] = None,
            store: Union[None, str, "RecordStoreLike"] = None) -> SweepResult:
        """Execute all (remaining) runs and return the merged result.

        ``resume_from`` supplies records of a previous partial execution (a
        JSON path, a sharded store directory, or an in-memory result);
        records whose ``run_id`` belongs to this spec are kept and their runs
        skipped.  A resumed record whose stored seed or grid point disagrees
        with this spec's derivation (a different ``master_seed``, or an
        edited grid reusing the same sweep name) raises rather than silently
        mixing ensembles.  ``save_path`` persists the merged result as a
        single JSON blob afterwards.

        Persistence through a record store: ``store`` (a
        :class:`~repro.store.base.RecordStore`, a directory path for the
        sharded backend, ``":memory:"``, or a ``*.json`` path for the legacy
        blob — see :func:`repro.store.open_store`) switches checkpointing
        from whole-blob rewrites to *record-incremental* appends: every
        outcome appends as it completes, ``checkpoint_every=k`` flushes
        (fsync + manifest) every ``k`` outcomes, and a full pass seals the
        store.  A non-empty store resumes implicitly (no ``resume_from``
        needed); pairing it with an explicit ``resume_from`` *seeds* the
        store from that source first — the legacy→sharded migration path, in
        which the old checkpoint's records are appended once and execution
        continues shard-incrementally.  ``store`` and ``save_path`` are
        mutually exclusive — one persistence authority per pass.

        Checkpointing (legacy path): records stream from the executor
        (``imap_unordered``), and with ``checkpoint_every=k`` every ``k``
        completed records trigger an atomic save to ``save_path`` — a long
        sweep killed mid-executor-pass resumes from the last checkpoint
        instead of restarting.  Independent of ``checkpoint_every``, when
        ``save_path`` (or ``store``) is set the records completed so far are
        persisted even if a run raises (or the process is interrupted with
        ``KeyboardInterrupt``), so resuming always picks up where execution
        stopped.

        Robustness: a ``resume_from`` *path* loads through
        :meth:`SweepResult.load_resumable` — a truncated/corrupt/digest-
        mismatched checkpoint falls back to its rolling ``.bak`` (or a clean
        start) with an explicit warning instead of a stack trace, and a store
        directory runs shard recovery (torn tails truncated, corrupt shards
        quarantined).  Runs a supervised executor quarantined (``FailedRun``)
        land in ``result.failed_runs`` — and a resumed checkpoint's
        quarantined runs are *retried*, not carried forward (under whatever
        :class:`RetryPolicy` *this* execution's executor carries — a fresh
        budget, so runs exhausted under an old policy get their new chances).

        Streaming hooks (the service layer's attachment points):
        ``progress`` is called with a :class:`SweepProgress` snapshot after
        every consumed outcome — *after* any checkpoint save/flush it
        triggered, so a callback observing ``checkpointed=True`` can rely on
        the records being durable.  ``should_stop`` is polled after each
        outcome; returning True drains the sweep cleanly — the executor
        stream is closed (its fleet torn down), everything completed so far
        is persisted, and the partial result returns.  Resuming it later
        completes the sweep bit-identically.

        Internally this is a thin loop over a :class:`SweepPass` — the
        prepare/consume/finalize decomposition the service daemon drives
        directly when it interleaves several jobs onto one executor.
        """
        sweep_pass = SweepPass(self, resume_from=resume_from,
                               save_path=save_path,
                               checkpoint_every=checkpoint_every,
                               progress=progress, store=store)
        pending_items = sweep_pass.prepare()
        # Custom executors predating the streaming interface only provide
        # map(); fall back to it — checkpointing then degrades to the
        # end-of-pass (and on-error) saves.
        imap = getattr(self.executor, "imap_unordered", None)
        if imap is None and checkpoint_every is not None:
            warnings.warn(
                f"executor {type(self.executor).__name__} has no "
                "imap_unordered: records cannot stream, so "
                f"checkpoint_every={checkpoint_every} degrades to a single "
                "save after the whole pass completes", RuntimeWarning,
                stacklevel=2)
            logger.warning(
                "sweep %s: executor %s lacks imap_unordered; "
                "checkpoint_every=%d degrades to end-of-pass saves",
                self.spec.name, type(self.executor).__name__, checkpoint_every)
        stream = imap(sweep_pass.work_fn, pending_items) if imap is not None \
            else iter(self.executor.map(sweep_pass.work_fn, pending_items))
        stopped = False
        try:
            for outcome in stream:
                # Our executors yield flat per-run outcomes; _as_outcomes
                # also absorbs a custom executor passing ensemble result
                # lists through unflattened.
                for record in _as_outcomes(outcome):
                    sweep_pass.consume(record)
                if should_stop is not None and should_stop():
                    stopped = True
                    logger.info(
                        "sweep %s: stop requested — draining at %d/%d runs",
                        self.spec.name, sweep_pass.completed,
                        len(sweep_pass.pending))
                    break
        finally:
            if stopped:
                # Drain deterministically: closing the executor stream tears
                # its fleet down (GeneratorExit reaches the pool's finally)
                # instead of leaving that to garbage collection.
                close = getattr(stream, "close", None)
                if close is not None:
                    close()
            # Persist whatever completed — the final result on success, the
            # freshest checkpoint on an executor error or interruption.
            sweep_pass.finalize(stopped)
        return sweep_pass.summarize()


def run_sweeps(specs: Sequence[SweepSpec],
               executor: Optional[Executor] = None) -> Dict[str, SweepResult]:
    """Execute several sweeps through one executor pass, keyed by spec name.

    Paper harnesses often need *coupled* grids (e.g. the Sec. 6.6 headline
    pairs the baseline compile with the DVFS controller and the AIM compile
    with the booster), which a single cartesian product cannot express.  This
    helper expands every spec, executes the union of runs in one ``map`` so a
    pool executor parallelizes across sweeps, and splits the records back per
    spec.  Spec names must be unique (they prefix the run ids).
    """
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"sweep names must be unique, got {names}")
    executor = executor or SerialExecutor()

    all_runs: List[RunSpec] = []
    owner: List[str] = []
    for spec in specs:
        expanded = spec.expand()
        all_runs.extend(expanded)
        owner.extend([spec.name] * len(expanded))

    records = executor.map(execute_run, all_runs)
    results = {spec.name: SweepResult(spec=spec) for spec in specs}
    for name, record in zip(owner, records):
        if isinstance(record, FailedRun):
            results[name].failed_runs.append(record)
        else:
            results[name].add(record)
    for result in results.values():
        result.records = result.sorted_records()
    return results
