"""Declarative sweep specifications.

The paper's headline experiments (the Sec. 6.6 portfolio, the Fig. 18 beta
trade-off, the Fig. 19/20 ablations) are all parameter sweeps over independent
simulations.  A :class:`SweepSpec` describes such a sweep declaratively — a
cartesian grid over workloads, controllers, modes, beta windows, stress knobs
and a seed ensemble — and expands into a flat list of :class:`RunSpec`s, the
unit of work the :class:`~repro.sweep.runner.SweepRunner` dispatches.

Everything in this module is a plain frozen dataclass of primitives so that
specs pickle cheaply across :mod:`multiprocessing` boundaries.  Workers never
receive a compiled workload: they receive the :class:`WorkloadSpec` and build
(and cache) the chip image themselves — see :mod:`repro.sweep.builders`.

Determinism contract
--------------------
Every run's simulation seed is derived as::

    SeedSequence(master_seed, spawn_key=(point_index, seed_index))

so a run's seed depends only on the sweep's ``master_seed``, its grid-point
index and its position in the seed ensemble — not on execution order, executor
choice (serial vs. pool), chunking, or which runs were resumed from a partial
result file.  This is what makes the pool executor reproduce serial sweeps
bit-for-bit.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["WorkloadSpec", "RunSpec", "SweepSpec", "EnsembleSpec",
           "RetryPolicy", "run_seed", "ensemble_seed", "group_into_ensembles"]


def run_seed(master_seed: int, point_index: int, seed_index: int) -> int:
    """The deterministic simulation seed of one run (see module docstring)."""
    sequence = np.random.SeedSequence(master_seed,
                                      spawn_key=(point_index, seed_index))
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def ensemble_seed(master_seed: int, seed_index: int) -> int:
    """The shared (common-random-numbers) seed of one ensemble member.

    Used by ``SweepSpec(seed_mode="shared")``: every grid point's ``k``-th
    ensemble run draws the same seed, so points differ *only* in their
    configuration.  Distinct from any :func:`run_seed` derivation (the spawn
    key has a different shape).
    """
    sequence = np.random.SeedSequence(master_seed, spawn_key=(seed_index,))
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def _jitter_unit(salt: int, token: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for backoff jitter.

    A pure function of ``(salt, token, attempt)`` — no RNG state, so a
    retried run computes the same delay in whichever process (or pool
    rebuild) dispatches it, and tests can pin exact delays.
    """
    digest = hashlib.sha256(f"{salt}|{token}|{attempt}".encode())
    return int.from_bytes(digest.digest()[:8], "big") / 2 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervised executors retry a failing run.

    A run *attempt* fails when :func:`~repro.sweep.runner.execute_run` raises,
    when it exceeds the executor's per-run wall-clock timeout, or when the
    worker process executing it dies.  The policy allows ``max_attempts``
    attempts total; a run that exhausts them is quarantined as a
    :class:`~repro.sweep.records.FailedRun` instead of aborting the sweep.
    ``backoff`` seconds (times the number of failures so far, linear) pass
    before each re-dispatch — a courtesy pause for faults caused by transient
    resource pressure.

    ``jitter="decorrelated"`` spreads those pauses so a fleet of workers that
    all failed on the same shared-store hiccup does not retry in lockstep
    (and hiccup again): each retry's delay follows the decorrelated-jitter
    recurrence ``d(a) = min(max_backoff, uniform(backoff, 3 * d(a-1)))``,
    with the uniforms drawn deterministically from ``(jitter_salt, run_id,
    attempt)`` — per-run-decorrelated but bit-reproducible, so chaos tests
    stay exact.  The default ``"none"`` keeps the historical linear ramp.

    Frozen and scalar-only so it pickles across the pool boundary like every
    other spec in this module.
    """

    max_attempts: int = 3
    backoff: float = 0.0
    #: "none" (linear ``backoff * (attempt - 1)`` ramp) or "decorrelated".
    jitter: str = "none"
    #: upper clamp of any single jittered delay, in seconds.
    max_backoff: float = 30.0
    #: reshuffles the deterministic jitter draws (like a fault-plan salt).
    jitter_salt: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be a positive attempt budget")
        if self.backoff < 0:
            raise ValueError("backoff seconds must be non-negative")
        if self.jitter not in ("none", "decorrelated"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}; "
                             "expected 'none' or 'decorrelated'")
        if self.max_backoff <= 0:
            raise ValueError("max_backoff must be positive seconds")

    def delay_before(self, attempt: int, token: str = "") -> float:
        """Seconds to pause before dispatching ``attempt`` (1-based).

        ``token`` decorrelates jittered delays across runs (executors pass
        the ``run_id``); it is ignored under ``jitter="none"``.
        """
        if attempt <= 1 or self.backoff == 0:
            return 0.0
        if self.jitter == "none":
            return self.backoff * (attempt - 1)
        delay = self.backoff
        for a in range(2, attempt + 1):
            u = _jitter_unit(self.jitter_salt, token, a)
            delay = min(self.max_backoff,
                        self.backoff + u * (3.0 * delay - self.backoff))
        return delay

    def max_delay_before(self, attempt: int) -> float:
        """Upper bound of :meth:`delay_before` over every token.

        The supervised pool budgets chunk deadlines before it knows which
        jittered delays will actually be drawn, so it must assume the worst.
        """
        if attempt <= 1 or self.backoff == 0:
            return 0.0
        if self.jitter == "none":
            return self.backoff * (attempt - 1)
        return min(self.max_backoff, self.backoff * 3.0 ** (attempt - 1))


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative, picklable recipe for one compiled workload.

    The spec names a registered *builder* (see :mod:`repro.sweep.builders`)
    plus everything that builder needs to reconstruct the exact chip image in a
    worker process: the model/profile parameters, the compiler knobs and the
    chip geometry.  Building is deterministic — two processes given the same
    spec produce identical compiled workloads.

    Builders:

    * ``"model"`` — QAT-train a model-zoo network (``model``/``lhr``/
      ``qat_epochs``) and compile it (mirrors ``benchmarks/common.py``);
    * ``"synthetic"`` — random Laplace-code operators, no training; used by
      tests and examples where compile cost must stay in milliseconds.
    """

    builder: str = "model"
    #: model-zoo name ("resnet18", "vit", ...) for the "model" builder.
    model: str = "resnet18"
    lhr: bool = True                       #: LHR-regularized QAT (lambda=2.0)?
    wds_delta: Optional[int] = 16          #: WDS shift; None disables WDS.
    mapping: str = "hr_aware"              #: task-mapping strategy.
    mode: str = "low_power"                #: mapping-evaluator objective.
    bits: int = 8
    max_tasks_per_operator: Optional[int] = 2
    qat_epochs: int = 2
    qat_learning_rate: float = 3e-3
    attention_seq_len: int = 16
    #: chip geometry (``small_chip_config`` arguments).
    groups: int = 8
    macros_per_group: int = 2
    banks: int = 4
    rows: int = 32
    compile_seed: int = 0
    #: "synthetic" builder: number of operators and their Laplace spread.
    n_operators: int = 4
    code_spread: float = 20.0
    #: "synthetic" builder: rows per operator (defaults to the chip's macro
    #: rows).  Larger values tile one operator across several macros, creating
    #: multi-macro logical Sets whose recompute stalls propagate — and, when
    #: the tile count does not divide the group size, Sets that straddle group
    #: boundaries (the engine's coupled-group path).
    operator_rows: Optional[int] = None
    #: display name; auto-derived when empty.
    label: str = ""

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        wds = f"wds{self.wds_delta}" if self.wds_delta is not None else "nowds"
        lhr = "lhr" if self.lhr else "base"
        return f"{self.model}:{lhr}+{wds}:{self.mapping}"


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved simulation: a grid point plus one ensemble seed.

    ``point_key`` identifies the grid point (everything except the seed) as a
    canonical tuple of ``(axis, value)`` pairs; records of the same point are
    aggregated together across the seed ensemble.  It captures the *complete*
    run identity — including ``recompute_cycles`` and a fingerprint of every
    :class:`WorkloadSpec` field — so resuming a sweep whose spec was edited in
    any way that changes simulation outcomes is detected and rejected, not
    silently satisfied by stale records.
    """

    run_id: str
    point_index: int
    seed_index: int
    seed: int                              #: RuntimeConfig.seed for this run.
    workload: WorkloadSpec
    controller: str
    mode: str
    beta: int
    cycles: int
    recompute_cycles: int = 12
    flip_mean: float = 0.6
    flip_std: float = 0.15
    flip_correlation: float = 0.7
    monitor_noise: float = 0.003
    #: result materialization (``RuntimeConfig.traces``).  Sweeps default to
    #: the scalar fast path — records hold only scalar metrics, so the
    #: trace-free run returns equivalent records (discrete fields
    #: bit-identical, float reductions to 1e-9 rtol) while skipping all
    #: trace materialization.  Deliberately *not* part of ``point_key``:
    #: it changes how results materialize, not what they are.
    traces: str = "none"

    @property
    def point_key(self) -> Tuple[Tuple[str, object], ...]:
        return (
            ("workload", self.workload.name),
            ("workload_config", workload_fingerprint(self.workload)),
            ("controller", self.controller),
            ("mode", self.mode),
            ("beta", self.beta),
            ("cycles", self.cycles),
            ("recompute_cycles", self.recompute_cycles),
            ("flip_mean", self.flip_mean),
            ("flip_std", self.flip_std),
            ("flip_correlation", self.flip_correlation),
            ("monitor_noise", self.monitor_noise),
        )

    def runtime_config(self):
        """The :class:`~repro.sim.runtime.RuntimeConfig` this run simulates."""
        from ..sim.runtime import RuntimeConfig
        return RuntimeConfig(
            cycles=self.cycles, controller=self.controller, mode=self.mode,
            beta=self.beta, recompute_cycles=self.recompute_cycles,
            flip_mean=self.flip_mean, flip_std=self.flip_std,
            flip_correlation=self.flip_correlation,
            monitor_noise=self.monitor_noise, seed=self.seed,
            traces=self.traces)


@dataclass(frozen=True)
class EnsembleSpec:
    """A batch of :class:`RunSpec`s resolved in one ensemble-engine pass.

    The runner's work unit for batched execution
    (:func:`~repro.sweep.runner.execute_ensemble`): all member runs share
    the compiled workload and the activity-stacking axes
    (:data:`~repro.sim.ensemble.ENSEMBLE_SHARED_FIELDS`), which is exactly
    what :func:`group_into_ensembles` guarantees.  Members typically form a
    grid point's seed ensemble, or — under ``seed_mode="shared"`` — a
    shared-seed beta/controller grid slice.  Records stay per member
    (bit-identical to per-run execution), so resume, retry supervision and
    failure quarantine all keep their per-run granularity.

    Duck-typed like a :class:`RunSpec` where the executors care: ``run_id``
    labels the batch in timeout/quarantine reporting and ``workload`` drives
    the pool's chunk planning, so a whole ensemble always lands on one
    worker with its chip image.
    """

    runs: Tuple[RunSpec, ...]

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError("an EnsembleSpec needs at least one member run")
        first = self.runs[0]
        for run in self.runs:
            if batch_key(run) != batch_key(first):
                raise ValueError(
                    "ensemble members must share the workload and activity "
                    f"axes: {run.run_id} does not batch with {first.run_id}")

    @property
    def workload(self) -> WorkloadSpec:
        return self.runs[0].workload

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def run_id(self) -> str:
        first = self.runs[0].run_id
        if len(self.runs) == 1:
            return first
        return f"{first}(+{len(self.runs) - 1})"


def batch_key(run: RunSpec) -> Tuple:
    """Everything two runs must share to execute in one ensemble batch:
    the workload identity plus the activity-stacking axes (the sweep-level
    mirror of :data:`repro.sim.ensemble.ENSEMBLE_SHARED_FIELDS`;
    ``input_determined_hr`` is not a sweep axis)."""
    return (workload_fingerprint(run.workload), run.cycles, run.flip_mean,
            run.flip_std, run.flip_correlation)


def group_into_ensembles(runs: List[RunSpec],
                         max_members: int = 16) -> List[EnsembleSpec]:
    """Group runs into :class:`EnsembleSpec` batches of compatible members.

    Grouping is by :func:`batch_key` (workload + activity axes), preserving
    expansion order within each batch and capping batches at ``max_members``
    (bounding the stacked activity/physics working set).  A partial sweep —
    resume leaves arbitrary subsets pending — simply yields smaller batches;
    singletons are valid ensembles.
    """
    if max_members < 1:
        raise ValueError("max_members must be positive")
    by_key: Dict[Tuple, List[RunSpec]] = {}
    order: List[Tuple] = []
    for run in runs:
        key = batch_key(run)
        if key not in by_key:
            by_key[key] = []
            order.append(key)
        by_key[key].append(run)
    ensembles: List[EnsembleSpec] = []
    for key in order:
        members = by_key[key]
        for start in range(0, len(members), max_members):
            ensembles.append(EnsembleSpec(
                runs=tuple(members[start:start + max_members])))
    return ensembles


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian sweep grid plus a seed ensemble.

    The grid is the product ``workloads x controllers x modes x betas x
    flip_means x flip_stds x flip_correlations x monitor_noises``; every grid
    point is simulated ``seeds`` times with :func:`run_seed`-derived seeds.
    ``expand()`` returns the runs in a deterministic order (itertools.product
    order, seeds innermost), but nothing downstream depends on that order.
    """

    name: str = "sweep"
    workloads: Tuple[WorkloadSpec, ...] = (WorkloadSpec(),)
    controllers: Tuple[str, ...] = ("booster",)
    modes: Tuple[str, ...] = ("low_power",)
    betas: Tuple[int, ...] = (50,)
    cycles: int = 2000
    recompute_cycles: int = 12
    #: stress axes: activity statistics and monitor sensing noise.
    flip_means: Tuple[float, ...] = (0.6,)
    flip_stds: Tuple[float, ...] = (0.15,)
    flip_correlations: Tuple[float, ...] = (0.7,)
    monitor_noises: Tuple[float, ...] = (0.003,)
    #: seed-ensemble size per grid point and the sweep's master seed.
    seeds: int = 1
    master_seed: int = 0
    #: result materialization for every run (``RuntimeConfig.traces``);
    #: ``"none"`` (default) is the scalar-record fast path — sweep records
    #: are scalar-only, so nothing is lost and all trace materialization is
    #: skipped.  Set ``"full"`` to re-run the slow path (the record
    #: equivalence between the two is asserted by the benchmark harnesses).
    traces: str = "none"
    #: seed derivation: "per_point" (default — every run draws an independent
    #: seed from its grid coordinates) or "shared" (common random numbers —
    #: every grid point's k-th ensemble run uses the same seed, so points
    #: differ only in configuration).  Shared seeds reduce the variance of
    #: cross-point comparisons (e.g. the Fig. 18 beta trade-off) and let the
    #: engine's process-level level cache (:mod:`repro.sim.level_cache`) reuse
    #: the per-(group, level) physics across every point of the grid — and,
    #: under ``PoolExecutor(shared_cache_dir=...)``, across every *worker* of
    #: a pool fleet through the on-disk store
    #: (:mod:`repro.sim.shared_store`).  The paper-figure harnesses (Fig. 18,
    #: Fig. 19-20) run shared since PR 4.
    seed_mode: str = "per_point"

    def __post_init__(self) -> None:
        if self.seeds <= 0:
            raise ValueError("seeds must be a positive ensemble size")
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")
        if self.seed_mode not in ("per_point", "shared"):
            raise ValueError(f"unknown seed_mode {self.seed_mode!r}; "
                             "expected 'per_point' or 'shared'")
        if self.traces not in ("full", "none"):
            raise ValueError(f"unknown traces mode {self.traces!r}; "
                             "expected 'full' or 'none'")

    @property
    def n_points(self) -> int:
        return (len(self.workloads) * len(self.controllers) * len(self.modes)
                * len(self.betas) * len(self.flip_means) * len(self.flip_stds)
                * len(self.flip_correlations) * len(self.monitor_noises))

    @property
    def n_runs(self) -> int:
        return self.n_points * self.seeds

    def expand(self) -> List[RunSpec]:
        """Expand the grid into :class:`RunSpec`s (one per point per seed)."""
        runs: List[RunSpec] = []
        grid = itertools.product(
            self.workloads, self.controllers, self.modes, self.betas,
            self.flip_means, self.flip_stds, self.flip_correlations,
            self.monitor_noises)
        shared = self.seed_mode == "shared"
        for point_index, (workload, controller, mode, beta, flip_mean,
                          flip_std, flip_correlation, monitor_noise) in enumerate(grid):
            for seed_index in range(self.seeds):
                runs.append(RunSpec(
                    run_id=f"{self.name}/p{point_index:04d}/s{seed_index:03d}",
                    point_index=point_index, seed_index=seed_index,
                    seed=(ensemble_seed(self.master_seed, seed_index) if shared
                          else run_seed(self.master_seed, point_index, seed_index)),
                    workload=workload, controller=controller, mode=mode,
                    beta=beta, cycles=self.cycles,
                    recompute_cycles=self.recompute_cycles,
                    flip_mean=flip_mean, flip_std=flip_std,
                    flip_correlation=flip_correlation,
                    monitor_noise=monitor_noise, traces=self.traces))
        return runs

    def to_json_dict(self) -> Dict:
        """JSON-serializable description (persisted alongside the records)."""
        return {
            "name": self.name,
            "workloads": [vars_of(w) for w in self.workloads],
            "controllers": list(self.controllers),
            "modes": list(self.modes),
            "betas": list(self.betas),
            "cycles": self.cycles,
            "recompute_cycles": self.recompute_cycles,
            "flip_means": list(self.flip_means),
            "flip_stds": list(self.flip_stds),
            "flip_correlations": list(self.flip_correlations),
            "monitor_noises": list(self.monitor_noises),
            "seeds": self.seeds,
            "master_seed": self.master_seed,
            "seed_mode": self.seed_mode,
            "traces": self.traces,
        }

    @classmethod
    def from_json_dict(cls, data: Dict) -> "SweepSpec":
        workloads = tuple(WorkloadSpec(**w) for w in data["workloads"])
        return cls(
            name=data["name"], workloads=workloads,
            controllers=tuple(data["controllers"]), modes=tuple(data["modes"]),
            betas=tuple(int(b) for b in data["betas"]), cycles=int(data["cycles"]),
            recompute_cycles=int(data["recompute_cycles"]),
            flip_means=tuple(data["flip_means"]),
            flip_stds=tuple(data["flip_stds"]),
            flip_correlations=tuple(data["flip_correlations"]),
            monitor_noises=tuple(data["monitor_noises"]),
            seeds=int(data["seeds"]), master_seed=int(data["master_seed"]),
            seed_mode=data.get("seed_mode", "per_point"),
            traces=data.get("traces", "none"))


def vars_of(spec: WorkloadSpec) -> Dict:
    """``dataclasses.asdict`` without the deep copies (all fields are scalars)."""
    return {f.name: getattr(spec, f.name) for f in fields(spec)}


def workload_fingerprint(spec: WorkloadSpec) -> str:
    """Canonical string over every field of a :class:`WorkloadSpec`.

    Stored in each record's ``point_key`` so a resumed sweep whose workload
    definition changed (even under an unchanged ``label``) is rejected.
    ``repr`` round-trips floats exactly, so the fingerprint is stable across
    processes and JSON serialization.
    """
    return "|".join(f"{name}={value!r}"
                    for name, value in sorted(vars_of(spec).items()))
