"""Workload profiles and synthetic input-stream generators."""

from .generator import (
    ActivationStreamGenerator,
    dataset_activation_stats,
    flip_factor_matrix,
    flip_factor_sequence,
)
from .profiles import (
    MIXED_OPERATOR_COMBOS,
    WorkloadProfile,
    build_workload_profile,
    classify_layer_kind,
    mixed_operator_workload,
)

__all__ = [
    "flip_factor_sequence", "flip_factor_matrix", "ActivationStreamGenerator",
    "dataset_activation_stats",
    "WorkloadProfile", "build_workload_profile", "classify_layer_kind",
    "mixed_operator_workload", "MIXED_OPERATOR_COMBOS",
]
