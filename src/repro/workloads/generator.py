"""Synthetic input-stream generation for the cycle-level PIM simulation.

The runtime needs, per macro, a per-cycle activity factor: the fraction of the
stored weight bits whose input word line actually toggles (this is what turns
HR — the upper bound — into the realized Rtog).  Profiling in the paper shows
this *flip factor* fluctuates around 0.5–0.7 with occasional bursts (Fig. 5),
and the HR-aware mapping evaluator samples a 100-step flip sequence from a
normal distribution (Sec. 5.6).

Two generators are provided:

* :func:`flip_factor_sequence` — a temporally correlated, clipped Gaussian
  sequence of flip factors (the runtime's fast path);
* :class:`ActivationStreamGenerator` — full integer activation waves matching a
  dataset's statistics, used when the exact bit-serial Rtog trace of a macro is
  wanted (Fig. 4/5 experiments).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.signal import lfilter

__all__ = ["flip_factor_sequence", "flip_factor_matrix", "clear_flip_cache",
           "ActivationStreamGenerator", "dataset_activation_stats"]


def flip_factor_sequence(cycles: int, mean: float = 0.6, std: float = 0.15,
                         correlation: float = 0.7, seed: int = 0,
                         low: float = 0.05, high: float = 1.0) -> np.ndarray:
    """AR(1)-correlated clipped Gaussian flip factors, one per cycle.

    ``correlation`` controls how slowly activity changes cycle to cycle; the
    stationary distribution keeps the requested mean/std.  The recurrence
    ``state[t] = correlation * state[t-1] + innovation[t]`` runs through
    :func:`scipy.signal.lfilter`, which evaluates the same arithmetic in C.
    """
    if cycles <= 0:
        return np.zeros(0)
    if not 0.0 <= correlation < 1.0:
        raise ValueError("correlation must be in [0, 1)")
    rng = np.random.default_rng(seed)
    innovations = rng.normal(0.0, std * np.sqrt(1 - correlation ** 2), size=cycles)
    state = rng.normal(0.0, std)
    values, _ = lfilter([1.0], [1.0, -correlation], innovations,
                        zi=np.array([correlation * state]))
    return np.clip(values + mean, low, high)


#: LRU of generated flip matrices.  Sweeps and controller comparisons simulate
#: the same compiled workload many times with identical seeds, so the (pure,
#: deterministic) generation is worth memoizing.  Entries are read-only arrays;
#: eviction is byte-budgeted so long-horizon multi-seed sweeps (each seed a
#: distinct key) cannot pin unbounded memory.
_FLIP_MATRIX_CACHE: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
_FLIP_MATRIX_CACHE_BUDGET_BYTES = 64 * 1024 * 1024


def flip_factor_matrix(seeds: Sequence[int], cycles: int, mean: float = 0.6,
                       std: float = 0.15, correlation: float = 0.7,
                       low: float = 0.05, high: float = 1.0) -> np.ndarray:
    """Batched :func:`flip_factor_sequence`: one row per seed, ``(len(seeds), cycles)``.

    Row ``i`` is bit-identical to ``flip_factor_sequence(cycles, ..., seed=seeds[i])``
    — each row consumes its own RNG stream — but the AR(1) recurrences of all
    rows run in a single :func:`scipy.signal.lfilter` call.  Results are
    memoized and returned as read-only arrays; copy before mutating.
    """
    seeds = tuple(int(s) for s in seeds)
    if cycles <= 0 or not seeds:
        return np.zeros((len(seeds), max(cycles, 0)))
    if not 0.0 <= correlation < 1.0:
        raise ValueError("correlation must be in [0, 1)")
    key = (seeds, cycles, mean, std, correlation, low, high)
    cached = _FLIP_MATRIX_CACHE.get(key)
    if cached is not None:
        _FLIP_MATRIX_CACHE.move_to_end(key)
        return cached
    innovations = np.empty((len(seeds), cycles))
    states = np.empty((len(seeds), 1))
    innovation_std = std * np.sqrt(1 - correlation ** 2)
    for i, seed in enumerate(seeds):
        rng = np.random.default_rng(seed)
        innovations[i] = rng.normal(0.0, innovation_std, size=cycles)
        states[i, 0] = rng.normal(0.0, std)
    filtered, _ = lfilter([1.0], [1.0, -correlation], innovations, axis=1,
                          zi=correlation * states)
    values = np.clip(filtered + mean, low, high)
    values.setflags(write=False)
    if values.nbytes <= _FLIP_MATRIX_CACHE_BUDGET_BYTES:
        _FLIP_MATRIX_CACHE[key] = values
        total = sum(entry.nbytes for entry in _FLIP_MATRIX_CACHE.values())
        while total > _FLIP_MATRIX_CACHE_BUDGET_BYTES:
            _, evicted = _FLIP_MATRIX_CACHE.popitem(last=False)
            total -= evicted.nbytes
    return values


def clear_flip_cache() -> None:
    """Drop every memoized flip matrix.

    Cold-path measurement helper: benchmarks that model first-sight sweep
    runs (each run a fresh seed) clear this memo alongside the level cache
    so the timed region includes activity generation.
    """
    _FLIP_MATRIX_CACHE.clear()


def dataset_activation_stats(inputs: np.ndarray) -> Tuple[float, float]:
    """(mean, std) of a dataset's input values, used to shape activation streams."""
    inputs = np.asarray(inputs, dtype=np.float64)
    return float(inputs.mean()), float(max(inputs.std(), 1e-6))


@dataclass
class ActivationStreamGenerator:
    """Generates integer activation waves for a macro's word lines.

    Activations are drawn from a Gaussian matched to the dataset statistics and
    quantized symmetrically to ``input_bits``; temporal correlation between
    consecutive waves lowers the realized toggle rate the same way real feature
    maps do (neighbouring pixels/tokens are similar).
    """

    rows: int
    input_bits: int = 8
    mean: float = 0.0
    std: float = 1.0
    correlation: float = 0.5
    seed: int = 0

    def generate(self, waves: int) -> np.ndarray:
        """Return (waves, rows) signed integer activations.

        The AR(1) recurrence over waves runs through
        :func:`scipy.signal.lfilter` (axis 0, all rows at once), the same
        formulation as :func:`flip_factor_matrix`.  RNG consumption matches
        the historical per-wave Python loop exactly — one ``rows``-sized draw
        for wave 0, then one ``(waves - 1, rows)`` batch whose C-order layout
        consumes the stream in the loop's wave-by-wave order — so the emitted
        integer codes are bit-identical to the loop's (for the default
        ``mean=0`` the intermediate floats are too; equivalence is enforced by
        ``tests/test_workloads_sim.py``).
        """
        if waves <= 0:
            return np.zeros((0, self.rows), dtype=np.int64)
        rng = np.random.default_rng(self.seed)
        qmax = (1 << (self.input_bits - 1)) - 1
        scale = max(3.0 * self.std, 1e-9) / qmax
        first = rng.normal(self.mean, self.std, size=self.rows)
        values = np.empty((waves, self.rows))
        values[0] = first
        if waves > 1:
            noise = rng.normal(0.0, self.std * np.sqrt(1 - self.correlation ** 2),
                               size=(waves - 1, self.rows))
            # Deviation-space AR(1): d[t] = correlation * d[t-1] + noise[t].
            deviations, _ = lfilter(
                [1.0], [1.0, -self.correlation], noise, axis=0,
                zi=self.correlation * (first - self.mean)[None, :])
            values[1:] = self.mean + deviations
        codes = np.clip(np.round(values / scale), -qmax - 1, qmax)
        return codes.astype(np.int64)
