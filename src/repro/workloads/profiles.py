"""Workload profiles: turning trained/quantized models into PIM operator lists.

A *workload profile* is the bridge between the software world (a model plus its
per-layer integer weight codes) and the hardware world (a list of
:class:`~repro.pim.dataflow.Operator` objects the compiler can tile and map).

The classification of layers follows the paper's operator taxonomy
(Sec. 5.5.1):

* convolution and stand-alone linear layers → weight-stationary (``conv`` /
  ``linear``): HR known offline, LHR/WDS applicable;
* attention input projections → ``qkv`` (weight-stationary);
* attention output projections → ``proj`` (weight-stationary);
* the QK^T and SV matmuls → ``qk_t`` / ``sv``: *input-determined*; their
  in-memory data are activations produced at runtime, so the profile
  synthesizes representative integer matrices from activation statistics and
  IR-Booster treats them at the 100 % safe level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..models.llama import LlamaAttention
from ..models.registry import ModelSpec, get_model_spec
from ..nn.attention import MultiHeadAttention
from ..nn.layers import Conv2d, Linear, Module
from ..pim.dataflow import Operator, layer_weight_matrix
from ..quant.quantizer import quantize, symmetric_scale

__all__ = ["WorkloadProfile", "classify_layer_kind", "build_workload_profile",
           "mixed_operator_workload", "MIXED_OPERATOR_COMBOS"]


#: The mixed-operator combinations evaluated in Fig. 21.
MIXED_OPERATOR_COMBOS: Dict[str, Sequence[str]] = {
    "conv+qkt": ("conv", "qk_t"),
    "conv+sv": ("conv", "sv"),
    "qkv+qkt": ("qkv", "qk_t"),
    "sv+linear": ("sv", "linear"),
}


@dataclass
class WorkloadProfile:
    """A named list of operators ready to be compiled onto the PIM chip."""

    name: str
    family: str                       #: "conv", "transformer" or "mixed"
    operators: List[Operator] = field(default_factory=list)

    @property
    def weight_stationary_operators(self) -> List[Operator]:
        return [op for op in self.operators if not op.input_determined]

    @property
    def input_determined_operators(self) -> List[Operator]:
        return [op for op in self.operators if op.input_determined]

    @property
    def mean_hamming_rate(self) -> float:
        rates = [op.hamming_rate for op in self.weight_stationary_operators]
        return float(np.mean(rates)) if rates else 0.0

    @property
    def max_hamming_rate(self) -> float:
        rates = [op.hamming_rate for op in self.weight_stationary_operators]
        return float(np.max(rates)) if rates else 0.0


def classify_layer_kind(layer_name: str, layer: Module) -> str:
    """Map a layer's name/type onto the AIM operator taxonomy."""
    lowered = layer_name.lower()
    if isinstance(layer, Conv2d):
        return "conv"
    if isinstance(layer, Linear):
        if lowered.endswith(("q_proj", "k_proj", "v_proj")):
            return "qkv"
        if lowered.endswith(("out_proj", "o_proj")):
            return "proj"
        return "linear"
    raise ValueError(f"layer {layer_name!r} of type {type(layer).__name__} is not a PIM operator")


def build_workload_profile(
    model: Module,
    name: str,
    family: str,
    codes_by_layer: Optional[Dict[str, np.ndarray]] = None,
    bits: int = 8,
    wds_deltas: Optional[Dict[str, int]] = None,
    include_attention_matmuls: bool = True,
    attention_seq_len: int = 16,
    max_operators: Optional[int] = None,
    seed: int = 0,
) -> WorkloadProfile:
    """Build the operator list for a model.

    ``codes_by_layer`` supplies already-quantized integer codes (e.g. from a QAT
    or PTQ result); missing layers are quantized on the fly from the model's
    current float weights.  ``wds_deltas`` attaches the compiler's WDS choices.
    """
    rng = np.random.default_rng(seed)
    codes_by_layer = codes_by_layer or {}
    wds_deltas = wds_deltas or {}
    operators: List[Operator] = []

    for layer_name, layer in model.weight_layers():
        kind = classify_layer_kind(layer_name, layer)
        if layer_name in codes_by_layer:
            codes = np.asarray(codes_by_layer[layer_name], dtype=np.int64)
            if codes.shape != layer.weight.shape:
                raise ValueError(
                    f"codes for {layer_name!r} have shape {codes.shape}, "
                    f"expected {layer.weight.shape}")
        else:
            scale = symmetric_scale(layer.weight.data, bits)
            codes = quantize(layer.weight.data, scale, bits)
        matrix = layer_weight_matrix(codes)
        operators.append(Operator(
            name=layer_name, kind=kind, codes=matrix, bits=bits,
            wds_delta=wds_deltas.get(layer_name, 0)))

    if include_attention_matmuls:
        operators.extend(_attention_runtime_operators(
            model, bits=bits, seq_len=attention_seq_len, rng=rng))

    if max_operators is not None:
        operators = operators[:max_operators]
    return WorkloadProfile(name=name, family=family, operators=operators)


def _attention_runtime_operators(model: Module, bits: int, seq_len: int,
                                 rng: np.random.Generator) -> List[Operator]:
    """Synthesize QK^T / SV in-memory data for every attention block.

    At runtime the in-memory data of QK^T is the K matrix and of SV the V (or
    attention-probability) matrix — both activations.  Representative integer
    matrices are drawn from a zero-mean Gaussian quantized to ``bits``, giving
    the ~50 % HR the paper observes for input-determined operators.
    """
    operators: List[Operator] = []
    qmax = (1 << (bits - 1)) - 1
    for module_name, module in model.named_modules():
        if not isinstance(module, (MultiHeadAttention, LlamaAttention)):
            continue
        head_dim = module.head_dim
        k_matrix = np.clip(np.round(rng.normal(0.0, qmax / 4.0, size=(head_dim, seq_len))),
                           -qmax - 1, qmax).astype(np.int64)
        v_matrix = np.clip(np.round(rng.normal(0.0, qmax / 4.0, size=(seq_len, head_dim))),
                           -qmax - 1, qmax).astype(np.int64)
        prefix = module_name or "attn"
        operators.append(Operator(name=f"{prefix}.qk_t", kind="qk_t",
                                  codes=k_matrix, bits=bits))
        operators.append(Operator(name=f"{prefix}.sv", kind="sv",
                                  codes=v_matrix, bits=bits))
    return operators


def mixed_operator_workload(combo: str, conv_profile: WorkloadProfile,
                            transformer_profile: WorkloadProfile,
                            operators_per_kind: int = 2) -> WorkloadProfile:
    """Build one of the Fig. 21 mixed workloads from two existing profiles.

    ``combo`` is a key of :data:`MIXED_OPERATOR_COMBOS`; the result interleaves
    ``operators_per_kind`` operators of each requested kind, drawing conv/linear
    operators from ``conv_profile`` and attention operators from
    ``transformer_profile``.
    """
    if combo not in MIXED_OPERATOR_COMBOS:
        raise KeyError(f"unknown combo {combo!r}; known: {sorted(MIXED_OPERATOR_COMBOS)}")
    kinds = MIXED_OPERATOR_COMBOS[combo]
    pool = {op.kind: [] for op in conv_profile.operators + transformer_profile.operators}
    for op in conv_profile.operators + transformer_profile.operators:
        pool.setdefault(op.kind, []).append(op)
    selected: List[Operator] = []
    for kind in kinds:
        candidates = pool.get(kind, [])
        if not candidates:
            raise ValueError(f"no operators of kind {kind!r} available for combo {combo!r}")
        selected.extend(candidates[:operators_per_kind])
    return WorkloadProfile(name=combo, family="mixed", operators=selected)
