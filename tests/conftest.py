"""Shared fixtures for the test suite.

Everything here is deliberately small (tiny chip geometries, handfuls of
operators, single training epochs) so the full suite runs in a few minutes
while still exercising every code path of the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pim.config import BankConfig, ChipConfig, GroupConfig, MacroConfig, small_chip_config
from repro.pim.dataflow import Operator, build_tasks
from repro.power.vf_table import VFTable
from repro.sim.compiler import CompilerConfig, compile_workload
from repro.workloads.profiles import WorkloadProfile


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "sweep_smoke: fast mini-sweep exercising the repro.sweep runner "
        "end-to-end inside the tier-1 suite")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_macro_config() -> MacroConfig:
    return MacroConfig(banks=4, bank=BankConfig(rows=8, weight_bits=8, input_bits=4))


@pytest.fixture
def tiny_chip_config() -> ChipConfig:
    return small_chip_config(groups=4, macros_per_group=2, banks=4, rows=8)


@pytest.fixture
def vf_table(tiny_chip_config) -> VFTable:
    return VFTable(nominal_voltage=tiny_chip_config.nominal_voltage,
                   nominal_frequency=tiny_chip_config.nominal_frequency,
                   signoff_ir_drop=tiny_chip_config.signoff_ir_drop)


from tests.helpers import make_operator


@pytest.fixture
def synthetic_profile(tiny_chip_config) -> WorkloadProfile:
    """A mixed synthetic workload: a few conv operators plus attention matmuls."""
    rows = tiny_chip_config.macro.rows
    cols = tiny_chip_config.macro.banks
    operators = [
        make_operator("conv1", rows, cols, kind="conv", seed=1),
        make_operator("conv2", rows, cols, kind="conv", seed=2),
        make_operator("fc", rows, cols, kind="linear", seed=3),
        make_operator("attn.qk_t", rows, cols, kind="qk_t", seed=4, spread=40.0),
    ]
    return WorkloadProfile(name="synthetic", family="mixed", operators=operators)


@pytest.fixture
def compiled_synthetic(synthetic_profile, tiny_chip_config, vf_table):
    config = CompilerConfig(bits=8, wds_delta=None, mapping_strategy="sequential",
                            max_tasks_per_operator=1)
    return compile_workload(synthetic_profile, tiny_chip_config, vf_table, config)
