"""Shared test helpers (imported as ``tests.helpers``)."""

from __future__ import annotations

import numpy as np

from repro.pim.dataflow import Operator


def make_operator(name: str, rows: int, cols: int, kind: str = "conv", bits: int = 8,
                  seed: int = 0, spread: float = 20.0, wds_delta: int = 0) -> Operator:
    """Random integer operator with a zero-centred, bell-shaped code distribution.

    ``spread`` is the Laplace scale of the codes: small spreads give low-HR
    operators, large spreads give high-HR operators, which lets tests construct
    workloads with controlled HR contrast.
    """
    generator = np.random.default_rng(seed)
    qmax = (1 << (bits - 1)) - 1
    codes = np.clip(np.round(generator.laplace(0.0, spread, size=(rows, cols))),
                    -qmax - 1, qmax).astype(np.int64)
    return Operator(name=name, kind=kind, codes=codes, bits=bits, wds_delta=wds_delta)


def bell_shaped_codes(size, spread: float = 15.0, seed: int = 0, bits: int = 8) -> np.ndarray:
    """Laplace-distributed integer codes clipped to the two's-complement range."""
    generator = np.random.default_rng(seed)
    qmax = (1 << (bits - 1)) - 1
    return np.clip(np.round(generator.laplace(0.0, spread, size=size)),
                   -qmax - 1, qmax).astype(np.int64)
