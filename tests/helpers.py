"""Shared test helpers (imported as ``tests.helpers``).

Besides the operator factories, this module is the *property-test corpus* for
the simulation engine suites: one seeded source of randomized scenarios
(geometry x controller x mode x stress x straddling-Sets) plus the engine
oracle chain — ``reference -> scan -> batched -> kernel -> ensemble`` — and
the equivalence assertions the chain is judged by.  ``tests/test_kernels.py``,
``tests/test_sim_engine.py`` and ``tests/test_scalar_records.py`` all draw
from here, so every suite stresses the same scenario space and a new engine
variant only has to join the chain once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.pim.dataflow import Operator


def make_operator(name: str, rows: int, cols: int, kind: str = "conv", bits: int = 8,
                  seed: int = 0, spread: float = 20.0, wds_delta: int = 0) -> Operator:
    """Random integer operator with a zero-centred, bell-shaped code distribution.

    ``spread`` is the Laplace scale of the codes: small spreads give low-HR
    operators, large spreads give high-HR operators, which lets tests construct
    workloads with controlled HR contrast.
    """
    generator = np.random.default_rng(seed)
    qmax = (1 << (bits - 1)) - 1
    codes = np.clip(np.round(generator.laplace(0.0, spread, size=(rows, cols))),
                    -qmax - 1, qmax).astype(np.int64)
    return Operator(name=name, kind=kind, codes=codes, bits=bits, wds_delta=wds_delta)


def bell_shaped_codes(size, spread: float = 15.0, seed: int = 0, bits: int = 8) -> np.ndarray:
    """Laplace-distributed integer codes clipped to the two's-complement range."""
    generator = np.random.default_rng(seed)
    qmax = (1 << (bits - 1)) - 1
    return np.clip(np.round(generator.laplace(0.0, spread, size=size)),
                   -qmax - 1, qmax).astype(np.int64)


# ---------------------------------------------------------------------- #
# scenario corpus: workloads
# ---------------------------------------------------------------------- #
def synthetic_spec(label: str, **overrides):
    """The suites' canonical synthetic workload: contained 2-macro Sets on an
    even tiling (every group takes the kernel paths) unless overridden."""
    from repro.sweep import WorkloadSpec
    params = dict(builder="synthetic", groups=6, macros_per_group=4, banks=4,
                  rows=8, operator_rows=16, n_operators=12, code_spread=30.0,
                  mapping="sequential", label=label)
    params.update(overrides)
    return WorkloadSpec(**params)


def contained_sets_spec(label: str = "corpus-contained", **overrides):
    """Independent groups only (Sets inside groups): the kernel paths."""
    return synthetic_spec(label, macros_per_group=2, n_operators=6, **overrides)


def straddling_sets_spec(label: str = "corpus-straddle", **overrides):
    """Two-macro Sets over three-macro groups: the coupled heap path."""
    return synthetic_spec(label, macros_per_group=3, n_operators=9, **overrides)


def random_workload_spec(label: str, rng: np.random.Generator,
                         coupling: str = "contained"):
    """Draw a synthetic workload geometry from the corpus distribution.

    ``coupling`` selects the event path mix: ``"contained"`` keeps every
    logical Set inside a group (Set size divides the group), ``"straddling"``
    forces 2-macro Sets across 3-macro groups (the heap scheduler), and
    ``"mixed"`` scatters Sets with the hr_aware mapping so both paths run in
    one simulation.
    """
    rows = 8
    if coupling == "straddling":
        macros_per_group, set_size, mapping = 3, 2, "sequential"
    elif coupling == "mixed":
        macros_per_group = int(rng.integers(2, 5))
        set_size = int(rng.choice([1, 2]))
        mapping = "hr_aware"
    elif coupling == "contained":
        macros_per_group = int(rng.choice([2, 4]))
        set_size = int(rng.choice(
            [size for size in (1, 2, 4) if macros_per_group % size == 0]))
        mapping = "sequential"
    else:
        raise ValueError(f"unknown coupling {coupling!r}")
    return synthetic_spec(
        label,
        groups=int(rng.integers(3, 8)),
        macros_per_group=macros_per_group,
        operator_rows=rows * set_size,
        n_operators=int(rng.integers(4, 14)),
        mapping=mapping)


# ---------------------------------------------------------------------- #
# scenario corpus: runtime knobs
# ---------------------------------------------------------------------- #
#: The suites' shared failure-dense stress point (booster, tight beta, long
#: recompute windows): dense enough that equivalence bugs cannot hide.
FAILURE_DENSE_STRESS = dict(controller="booster", beta=4, recompute_cycles=10,
                            flip_mean=0.8, monitor_noise=0.01, seed=7)

#: Stress axes for trace-vs-scalar and engine-variant sweeps: each entry
#: isolates one regime (dense bursts, long stalls, zero recompute, zero
#: noise, heavy-tailed flips).
STRESS_AXES = (
    dict(beta=4, recompute_cycles=10, flip_mean=0.8, monitor_noise=0.01),
    dict(beta=10, recompute_cycles=25, flip_mean=0.75, monitor_noise=0.006),
    dict(recompute_cycles=0, flip_mean=0.8, monitor_noise=0.01),
    dict(monitor_noise=0.0),
    dict(flip_std=0.3, flip_correlation=0.9, monitor_noise=0.008),
)


def random_runtime_kwargs(rng: np.random.Generator) -> Dict:
    """Draw runtime knobs (controller x mode x stress) from the corpus
    distribution; ~half the draws land in failure-dense territory."""
    kwargs = dict(
        cycles=int(rng.integers(200, 600)),
        controller=str(rng.choice(["dvfs", "booster_safe", "booster"])),
        mode=str(rng.choice(["low_power", "sprint"])),
        beta=int(rng.integers(3, 30)),
        recompute_cycles=int(rng.integers(0, 15)),
        flip_mean=float(rng.uniform(0.6, 0.9)),
        flip_std=float(rng.uniform(0.1, 0.3)),
        flip_correlation=float(rng.uniform(0.5, 0.9)),
        monitor_noise=float(rng.uniform(0.0, 0.025)),
        seed=int(rng.integers(0, 1000)),
    )
    if rng.random() < 0.5:                      # force a failure-dense point
        kwargs.update(beta=int(rng.integers(3, 8)),
                      flip_mean=float(rng.uniform(0.8, 0.9)),
                      monitor_noise=float(rng.uniform(0.01, 0.025)))
    return kwargs


@dataclass(frozen=True)
class Scenario:
    """One corpus draw: a workload spec plus the runtime kwargs to run it."""
    label: str
    workload: object                            # WorkloadSpec
    kwargs: Dict

    def compiled(self):
        from repro.sweep import build_compiled_workload
        return build_compiled_workload(self.workload)


def corpus_scenarios(count: int = 9, master_seed: int = 2025) -> Tuple[Scenario, ...]:
    """The seeded scenario corpus: ``count`` deterministic draws cycling
    through the contained/straddling/mixed coupling regimes."""
    couplings = ("contained", "straddling", "mixed")
    scenarios = []
    for index in range(count):
        rng = np.random.default_rng((master_seed, index))
        coupling = couplings[index % len(couplings)]
        workload = random_workload_spec(f"corpus-{index}-{coupling}", rng,
                                        coupling=coupling)
        kwargs = random_runtime_kwargs(rng)
        scenarios.append(Scenario(
            label=f"{index}-{coupling}-{kwargs['controller']}",
            workload=workload, kwargs=kwargs))
    return tuple(scenarios)


# ---------------------------------------------------------------------- #
# the engine oracle chain
# ---------------------------------------------------------------------- #
#: Every engine variant, oracle first.  Each later variant replaced the one
#: before it (scan -> batched event loop -> closed-form kernels -> batched
#: ensemble) and must stay bit-identical on discrete outcomes.
ENGINE_VARIANTS = ("reference", "scan", "batched", "kernel", "ensemble")


def run_engine_variant(compiled, variant: str, table=None, **kwargs):
    """Run one simulation through the named engine variant."""
    from repro.sim import PIMRuntime, RuntimeConfig, run_ensemble, simulate
    from repro.sim.engine import run_vectorized
    if variant == "reference":
        return simulate(compiled, RuntimeConfig(engine="reference", **kwargs),
                        table=table)
    config = RuntimeConfig(**kwargs)
    if variant == "scan":
        return run_vectorized(PIMRuntime(compiled, config, table=table),
                              batched=False)
    if variant == "batched":
        return run_vectorized(PIMRuntime(compiled, config, table=table),
                              kernel=False)
    if variant == "kernel":
        return run_vectorized(PIMRuntime(compiled, config, table=table),
                              kernel=True)
    if variant == "ensemble":
        return run_ensemble(compiled, [config], table=table)[0]
    raise ValueError(f"unknown engine variant {variant!r}")


def assert_oracle_chain(compiled, table=None,
                        variants: Sequence[str] = ENGINE_VARIANTS[1:],
                        clear_cache: bool = True, **kwargs):
    """Assert every requested variant reproduces the reference oracle.

    Returns the reference result so callers can add scenario-specific
    assertions (e.g. that the stress actually bit).
    """
    if clear_cache:
        from repro.sim import clear_level_cache
        clear_level_cache()
    reference = run_engine_variant(compiled, "reference", table=table, **kwargs)
    for variant in variants:
        result = run_engine_variant(compiled, variant, table=table, **kwargs)
        assert_results_equivalent(reference, result)
    return reference


# ---------------------------------------------------------------------- #
# equivalence assertions
# ---------------------------------------------------------------------- #
def assert_results_equivalent(reference, vectorized):
    """Exact equality on discrete outcomes, tight allclose on energy."""
    assert len(reference.macro_results) == len(vectorized.macro_results)
    for ref, vec in zip(reference.macro_results, vectorized.macro_results):
        assert ref.macro_index == vec.macro_index
        assert ref.failures == vec.failures
        assert ref.stall_cycles == vec.stall_cycles
        assert np.array_equal(ref.rtog_trace, vec.rtog_trace)
        assert np.array_equal(ref.drop_trace, vec.drop_trace)
        assert np.isclose(ref.energy.dynamic_energy, vec.energy.dynamic_energy,
                          rtol=1e-9)
        assert np.isclose(ref.energy.static_energy, vec.energy.static_energy,
                          rtol=1e-9)
        assert np.isclose(ref.energy.elapsed_time, vec.energy.elapsed_time,
                          rtol=1e-9)
        assert np.isclose(ref.energy.completed_macs, vec.energy.completed_macs,
                          rtol=1e-9)
    assert len(reference.group_results) == len(vectorized.group_results)
    for ref, vec in zip(reference.group_results, vectorized.group_results):
        assert ref.group_id == vec.group_id
        assert ref.safe_level == vec.safe_level
        assert ref.final_level == vec.final_level
        assert ref.failures == vec.failures
        assert np.array_equal(ref.level_trace, vec.level_trace)
    assert np.array_equal(reference.chip_drop_trace, vectorized.chip_drop_trace)


#: Discrete record metrics that must be bit-identical across trace modes.
EXACT_METRICS = ("total_failures", "total_stall_cycles")


def assert_scalar_equivalent(full, scalar, rtol=1e-9):
    """Scalar (``traces="none"``) result vs full-trace result: the
    record-level contract — discrete fields bit-identical, float reductions
    to ``rtol``, extremal statistics exactly equal."""
    from repro.sweep.records import METRIC_NAMES
    assert scalar.chip_drop_trace is None
    assert len(full.macro_results) == len(scalar.macro_results)
    for ref, fast in zip(full.macro_results, scalar.macro_results):
        assert fast.rtog_trace is None and fast.drop_trace is None
        assert ref.macro_index == fast.macro_index
        assert ref.failures == fast.failures
        assert ref.stall_cycles == fast.stall_cycles
        # Extremal statistics pick existing floats: exactly equal.
        assert ref.worst_drop == fast.worst_drop
        assert ref.peak_rtog == fast.peak_rtog
        assert ref.mean_rtog == fast.mean_rtog
        assert np.isclose(ref.mean_drop, fast.mean_drop, rtol=rtol, atol=0.0)
        assert np.isclose(ref.energy.dynamic_energy, fast.energy.dynamic_energy,
                          rtol=rtol)
        assert np.isclose(ref.energy.static_energy, fast.energy.static_energy,
                          rtol=rtol)
        assert np.isclose(ref.energy.elapsed_time, fast.energy.elapsed_time,
                          rtol=rtol)
        assert ref.energy.completed_macs == fast.energy.completed_macs
    assert len(full.group_results) == len(scalar.group_results)
    for ref, fast in zip(full.group_results, scalar.group_results):
        assert fast.level_trace is None
        assert ref.group_id == fast.group_id
        assert ref.safe_level == fast.safe_level
        assert ref.final_level == fast.final_level
        assert ref.failures == fast.failures
        assert np.isclose(ref.mean_level, fast.mean_level, rtol=1e-12)
    for name in METRIC_NAMES:
        ref_value = getattr(full, name)
        fast_value = getattr(scalar, name)
        if name in EXACT_METRICS:
            assert ref_value == fast_value, name
        else:
            assert np.isclose(ref_value, fast_value, rtol=rtol, atol=0.0), name
