"""Tests for the analysis helpers plus the end-to-end AIM pipeline integration."""

import numpy as np
import pytest

from repro.analysis import (
    format_percent,
    format_ratio,
    format_series,
    format_table,
    linear_fit,
    pearson_correlation,
    rank_correlation,
)
from repro.core import AIMConfig, AIMPipeline
from repro.core.ir_booster import BoosterMode
from repro.pim.config import small_chip_config


class TestAnalysis:
    def test_pearson_perfect_and_degenerate(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)
        assert pearson_correlation(np.ones(5), np.arange(5)) == 0.0
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_rank_correlation_monotone(self):
        x = np.arange(20.0)
        assert rank_correlation(x, x ** 3) == pytest.approx(1.0)

    def test_linear_fit_recovers_slope(self):
        x = np.linspace(0, 1, 50)
        y = 3.0 * x + 0.5
        fit = linear_fit(x, y)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(0.5)
        assert np.allclose(fit.predict(x), y)
        with pytest.raises(ValueError):
            linear_fit([1.0], [2.0])

    def test_formatters(self):
        assert format_percent(0.283) == "28.3%"
        assert format_ratio(2.294) == "2.29x"
        table = format_table(["model", "hr"], [["resnet18", 0.41], ["vit", 0.39]],
                             title="Table 2")
        assert "Table 2" in table and "resnet18" in table
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
        series = format_series("fig14", {8: 0.88, 16: 0.78})
        assert "8=0.880" in series


class TestEndToEndPipeline:
    @pytest.fixture(scope="class")
    def outcome(self):
        config = AIMConfig(qat_epochs=1, cycles=300, lhr_lambda=2.0, wds_delta=16,
                           max_tasks_per_operator=1, mode=BoosterMode.LOW_POWER, seed=0)
        pipeline = AIMPipeline("vit", chip_config=small_chip_config(
            groups=4, macros_per_group=2, banks=4, rows=16), config=config)
        return pipeline.execute(compare_against_baseline=True)

    def test_summary_contains_all_headline_metrics(self, outcome):
        summary = outcome.summary()
        expected_keys = {"hr_average", "hr_max", "task_metric", "worst_ir_drop_mv",
                         "macro_power_mw", "effective_tops", "ir_drop_mitigation",
                         "energy_efficiency_gain", "speedup"}
        assert expected_keys == set(summary)
        assert all(np.isfinite(v) for v in summary.values())

    def test_low_power_mode_improves_energy_efficiency(self, outcome):
        """The paper's headline direction: AIM cuts per-macro power vs. the baseline."""
        assert outcome.energy_efficiency_gain > 1.2
        assert outcome.simulation.average_macro_power_mw < \
            outcome.baseline_simulation.average_macro_power_mw

    def test_ir_drop_mitigated_relative_to_signoff(self, outcome):
        assert 0.0 < outcome.ir_drop_mitigation < 1.0
        assert outcome.simulation.worst_ir_drop < \
            outcome.compiled.chip_config.signoff_ir_drop

    def test_workload_drop_stays_below_signoff_even_for_baseline(self, outcome):
        """Fig. 3: real workloads never reach the signoff worst case."""
        assert outcome.baseline_simulation.worst_ir_drop < \
            outcome.compiled.chip_config.signoff_ir_drop

    def test_lhr_reduced_hr_below_half(self, outcome):
        assert outcome.hr_average < 0.5

    def test_compiled_chip_matches_mapping(self, outcome):
        compiled = outcome.compiled
        assert set(compiled.chip.loaded_macro_indices()) == \
            set(compiled.mapping.assignment.values())
