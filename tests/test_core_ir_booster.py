"""Tests for IR-Booster: safe levels, Table 1 a-levels, and Algorithm 2."""

import pytest

from repro.core.ir_booster import (
    A_LEVEL_INIT,
    BoosterMode,
    IRBoosterController,
    initial_aggressive_level,
    safe_level_from_hr,
)
from repro.power.vf_table import VFTable


@pytest.fixture
def table() -> VFTable:
    return VFTable()


class TestSafeLevel:
    def test_rounds_up_to_next_5_percent(self, table):
        """Paper example: HRG = 47.5 % -> safe level 50 %."""
        assert safe_level_from_hr(0.475, table) == 50

    def test_exact_level_kept(self, table):
        assert safe_level_from_hr(0.40, table) == 40

    def test_above_60_reverts_to_dvfs(self, table):
        assert safe_level_from_hr(0.65, table) == 100
        assert safe_level_from_hr(0.99, table) == 100

    def test_input_determined_always_dvfs(self, table):
        assert safe_level_from_hr(0.2, table, input_determined=True) == 100

    def test_very_low_hr_clamps_to_lowest_level(self, table):
        assert safe_level_from_hr(0.01, table) == 20
        assert safe_level_from_hr(0.0, table) == 20


class TestInitialALevel:
    def test_table1_values(self, table):
        for safe, expected in A_LEVEL_INIT.items():
            assert initial_aggressive_level(safe, table) == expected

    def test_a_level_never_exceeds_safe_level(self, table):
        for safe, a_level in A_LEVEL_INIT.items():
            if safe != 100:
                assert a_level <= safe


class TestAlgorithm2:
    def make_controller(self, table, beta=10):
        controller = IRBoosterController(table, beta=beta, mode=BoosterMode.SPRINT)
        controller.configure_group(0, group_hr=0.47)   # safe 50, a-level0 35
        return controller

    def test_initialization(self, table):
        controller = self.make_controller(table)
        state = controller.state(0)
        assert state.safe_level == 50
        assert state.a_level == 35
        assert state.level == 35

    def test_failure_returns_to_safe_level(self, table):
        controller = self.make_controller(table)
        level = controller.step(0, ir_failure=True)
        assert level == 50
        assert controller.state(0).safe_counter == 0

    def test_rapid_failures_back_off_a_level(self, table):
        controller = self.make_controller(table, beta=10)
        # Algorithm 2 initializes SafeCounter to 0, so a failure right after
        # start counts as "too soon" and immediately backs the a-level off.
        controller.step(0, ir_failure=True)
        assert controller.state(0).a_level == 40      # one step toward safe
        # A second rapid failure backs it off again.
        controller.step(0, ir_failure=True)
        assert controller.state(0).a_level == 45
        assert controller.state(0).level_downs == 2

    def test_returns_to_a_level_after_beta_safe_cycles(self, table):
        controller = self.make_controller(table, beta=5)
        controller.step(0, ir_failure=True)            # at safe level 50; a-level backs to 40
        for _ in range(4):
            controller.step(0, ir_failure=False)
        assert controller.state(0).level == 50          # not yet back
        controller.step(0, ir_failure=False)             # safe_counter hits beta
        assert controller.state(0).level == controller.state(0).a_level == 40

    def test_level_up_after_two_beta_safe_cycles(self, table):
        controller = self.make_controller(table, beta=5)
        for _ in range(11):                              # > 2 * beta safe cycles
            controller.step(0, ir_failure=False)
        state = controller.state(0)
        assert state.a_level == 30                       # one step more aggressive
        assert state.level == 30
        assert state.level_ups == 1
        assert state.safe_counter == 5                   # reset to beta

    def test_frequency_sync_overrides_level(self, table):
        controller = self.make_controller(table)
        level = controller.step(0, ir_failure=False, frequency_sync_level=45)
        assert level == 45
        assert controller.state(0).safe_counter == 0

    def test_a_level_stays_within_table(self, table):
        controller = self.make_controller(table, beta=2)
        for _ in range(200):                             # push aggression to the floor
            controller.step(0, ir_failure=False)
        assert controller.state(0).a_level == min(table.booster_levels())

    def test_failure_counters(self, table):
        controller = self.make_controller(table)
        controller.step(0, ir_failure=True)
        controller.step(0, ir_failure=True)
        assert controller.state(0).failures == 2

    def test_invalid_beta(self, table):
        with pytest.raises(ValueError):
            IRBoosterController(table, beta=0)


class TestVFPairSelection:
    def test_sprint_pairs_prefer_frequency(self, table):
        controller = IRBoosterController(table, beta=10, mode=BoosterMode.SPRINT)
        controller.configure_group(0, group_hr=0.35)
        pair = controller.vf_pair(0)
        assert pair.frequency == max(p.frequency for p in table.pairs_for_level(pair.level))

    def test_low_power_pairs_prefer_low_energy(self, table):
        controller = IRBoosterController(table, beta=10, mode=BoosterMode.LOW_POWER)
        controller.configure_group(0, group_hr=0.35)
        pair = controller.vf_pair(0)
        level_pairs = table.pairs_for_level(pair.level)
        assert pair.dynamic_power_factor == min(p.dynamic_power_factor for p in level_pairs)

    def test_safe_pair_uses_safe_level(self, table):
        controller = IRBoosterController(table, beta=10)
        controller.configure_group(0, group_hr=0.47)
        assert controller.safe_vf_pair(0).level == 50

    def test_input_determined_group_uses_dvfs_pair(self, table):
        controller = IRBoosterController(table, beta=10)
        controller.configure_group(1, group_hr=0.3, input_determined=True)
        assert controller.state(1).safe_level == 100
        # Its initial aggressive level is still a booster level (Table 1: 100 -> 60).
        assert controller.state(1).a_level == 60


class TestBatchedControllerOps:
    """The closed-form batch counterparts of step(): step-for-step equivalent
    to looped per-cycle execution, at every phase of Algorithm 2."""

    def make_pair(self, table, beta=9, hr=0.42):
        controllers = []
        for _ in range(2):
            controller = IRBoosterController(table, beta=beta)
            controller.configure_group(0, group_hr=hr)
            controllers.append(controller)
        return controllers

    def snapshot(self, controller):
        state = controller.state(0)
        return (state.safe_level, state.a_level, state.level,
                state.safe_counter, state.failures, state.level_ups,
                state.level_downs)

    @pytest.mark.parametrize("gap", [0, 1, 3, 8, 9, 17, 19, 40])
    def test_advance_and_fail_matches_stepwise(self, table, gap):
        fast, slow = self.make_pair(table)
        # Shift phase with a couple of failures first, then compare the fused
        # call against advance + step at several gap lengths.
        for controller in (fast, slow):
            controller.step(0, ir_failure=True)
        for _ in range(3):
            transitions, level, next_gap = fast.advance_and_fail(0, gap)
            observed = []
            for _ in range(gap):
                slow.step(0, ir_failure=False)
                observed.append(slow.state(0).level)
            slow.step(0, ir_failure=True)
            assert self.snapshot(fast) == self.snapshot(slow)
            assert level == slow.state(0).level
            assert next_gap == slow.cycles_to_next_transition(0)
            for offset, lvl in transitions:
                assert observed[offset - 1] == lvl

    def test_advance_to_transition_matches_advance_nofail(self, table):
        fast, slow = self.make_pair(table, beta=6)
        for i in range(25):
            expected_gap = slow.cycles_to_next_transition(0)
            steps, level, next_gap = fast.advance_to_transition(0)
            transitions = slow.advance_nofail(0, expected_gap)
            assert steps == expected_gap
            assert self.snapshot(fast) == self.snapshot(slow)
            assert level == slow.state(0).level
            assert next_gap == slow.cycles_to_next_transition(0)
            assert transitions and transitions[-1][1] == level
            if i % 7 == 3:                       # shift phase with a failure
                fast.step(0, ir_failure=True)
                slow.step(0, ir_failure=True)

    @pytest.mark.parametrize("seed", [0, 1, 2, 5])
    def test_apply_failures_matches_looped_step(self, table, seed):
        """Property test: random failure offsets over a horizon — the batch
        call reproduces the looped reference state and per-cycle levels."""
        import numpy as np
        rng = np.random.default_rng(seed)
        total = 400
        n_fails = int(rng.integers(1, 40))
        offsets = sorted(rng.choice(total, size=n_fails, replace=False).tolist())

        batch, looped = self.make_pair(table, beta=int(rng.integers(3, 30)))
        initial_level = batch.state(0).level
        breaks = batch.apply_failures(0, offsets, total)

        fails = set(offsets)
        stepwise = []
        for cycle in range(total):
            looped.step(0, ir_failure=cycle in fails)
            stepwise.append(looped.state(0).level)
        assert self.snapshot(batch) == self.snapshot(looped)

        # Reconstruct the per-cycle level trace from the break list.
        level = initial_level
        reconstructed = []
        by_offset = {}
        for offset, lvl in breaks:
            by_offset[offset] = lvl              # last break at an offset wins
        for cycle in range(1, total + 1):
            if cycle in by_offset:
                level = by_offset[cycle]
            reconstructed.append(level)
        assert reconstructed == stepwise

    def test_apply_failures_rejects_bad_offsets(self, table):
        controller, _ = self.make_pair(table)
        with pytest.raises(ValueError):
            controller.apply_failures(0, [5, 5], 100)    # not strictly increasing
        with pytest.raises(ValueError):
            controller.apply_failures(0, [100], 100)     # outside the horizon

    def test_apply_failures_without_failures_is_advance_nofail(self, table):
        fast, slow = self.make_pair(table, beta=5)
        breaks = fast.apply_failures(0, [], 60)
        transitions = slow.advance_nofail(0, 60)
        assert breaks == transitions
        assert self.snapshot(fast) == self.snapshot(slow)

    @pytest.mark.parametrize("seed", [0, 1, 2, 5, 11])
    def test_apply_failures_at_cycles_matches_looped_step(self, table, seed):
        """Property test: random safe-level failure runs (every inter-failure
        gap shorter than beta) — one vectorized call reproduces the looped
        per-cycle reference state exactly, including a-level downgrades."""
        import numpy as np
        rng = np.random.default_rng(seed)
        beta = int(rng.integers(3, 30))
        batch, looped = self.make_pair(table, beta=beta)
        # Shift the phase randomly (failure-free steps plus maybe a failure).
        warm = int(rng.integers(0, 2 * beta))
        for controller in (batch, looped):
            for _ in range(warm):
                controller.step(0, ir_failure=False)
        # Build a run obeying the no-transition contract.
        first_gap = batch.cycles_to_next_transition(0)
        offsets = [int(rng.integers(0, first_gap))]
        for _ in range(int(rng.integers(0, 30))):
            offsets.append(offsets[-1] + 1 + int(rng.integers(0, beta)))
        level, next_gap = batch.apply_failures_at_cycles(0, offsets)

        fails = set(offsets)
        for cycle in range(offsets[-1] + 1):
            looped.step(0, ir_failure=cycle in fails)
        assert self.snapshot(batch) == self.snapshot(looped)
        assert level == looped.state(0).level
        assert next_gap == looped.cycles_to_next_transition(0)

    def test_apply_failures_at_cycles_numpy_path_matches_scalar(self, table):
        """Long runs take the vectorized numpy path; same state machine."""
        import numpy as np
        rng = np.random.default_rng(7)
        beta = 13
        batch, looped = self.make_pair(table, beta=beta)
        offsets = [int(rng.integers(0, beta))]
        for _ in range(199):                     # >= the scalar-path cutoff
            offsets.append(offsets[-1] + 1 + int(rng.integers(0, beta)))
        batch.apply_failures_at_cycles(0, np.asarray(offsets))
        fails = set(offsets)
        for cycle in range(offsets[-1] + 1):
            looped.step(0, ir_failure=cycle in fails)
        assert self.snapshot(batch) == self.snapshot(looped)

    def test_apply_failures_at_cycles_rejects_contract_violations(self, table):
        controller, _ = self.make_pair(table, beta=5)
        with pytest.raises(ValueError):
            controller.apply_failures_at_cycles(0, [3, 3])   # not increasing
        with pytest.raises(ValueError):
            controller.apply_failures_at_cycles(0, [-1])     # negative offset
        with pytest.raises(ValueError):
            # First failure lands beyond the next scheduled transition.
            controller.apply_failures_at_cycles(0, [50])
        with pytest.raises(ValueError):
            # A beta-long failure-free gap inside the run.
            controller.apply_failures_at_cycles(0, [1, 8])

    def test_apply_failures_at_cycles_empty_is_noop(self, table):
        controller, _ = self.make_pair(table, beta=5)
        before = self.snapshot(controller)
        level, gap = controller.apply_failures_at_cycles(0, [])
        assert self.snapshot(controller) == before
        assert level == controller.state(0).level
        assert gap == controller.cycles_to_next_transition(0)
