"""Tests for the LHR regularizer (paper Eq. 5, 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lhr import (
    LHRRegularizer,
    integer_hamming_table,
    interpolated_hamming_rate,
    interpolated_hamming_rate_grad,
    layer_hamming_loss,
    lhr_loss,
)
from repro.nn.layers import Linear, Module, Sequential
from repro.nn.tensor import Tensor
from repro.quant.quantizer import model_scales


class TestIntegerHammingTable:
    def test_length_and_range(self):
        table = integer_hamming_table(8)
        assert table.shape == (256,)
        assert table.min() == 0.0 and table.max() == 1.0

    def test_known_values(self):
        table = integer_hamming_table(8)
        qmin = -128
        assert table[0 - qmin] == 0.0                 # 0 -> no ones
        assert table[-1 - qmin] == 1.0                # -1 -> all ones
        assert table[-128 - qmin] == pytest.approx(1 / 8)
        assert table[8 - qmin] == pytest.approx(1 / 8)

    def test_int4_table(self):
        table = integer_hamming_table(4)
        assert table.shape == (16,)
        assert table[-1 + 8] == 1.0


class TestInterpolatedHR:
    def test_exact_integers_match_table(self):
        table = integer_hamming_table(8)
        weights = np.array([0.0, 8.0, -8.0, 127.0])
        hr = interpolated_hamming_rate(weights, scale=1.0, bits=8)
        expected = [table[0 + 128], table[8 + 128], table[-8 + 128], table[127 + 128]]
        assert np.allclose(hr, expected)

    def test_paper_example_minus_0p62(self):
        """Fig. 7-(b): interpolated HR of -0.62 (scale 1) is 0.62."""
        hr = interpolated_hamming_rate(np.array([-0.62]), scale=1.0, bits=8)
        assert hr[0] == pytest.approx(0.62, abs=1e-9)

    def test_paper_example_6p4(self):
        """Fig. 7-(b): HR(6.4) = 0.3 (between 6=2 ones and 7=3 ones: 0.25+0.4*0.125)."""
        hr = interpolated_hamming_rate(np.array([6.4]), scale=1.0, bits=8)
        assert hr[0] == pytest.approx(0.3, abs=1e-9)

    def test_clamps_out_of_range(self):
        hr = interpolated_hamming_rate(np.array([1000.0]), scale=1.0, bits=8)
        table = integer_hamming_table(8)
        assert hr[0] == pytest.approx(table[127 + 128])

    def test_respects_scale(self):
        # weight 1.24 at scale 2 is ratio 0.62: same as the -0.62 case mirrored.
        hr = interpolated_hamming_rate(np.array([12.8]), scale=2.0, bits=8)
        expected = interpolated_hamming_rate(np.array([6.4]), scale=1.0, bits=8)
        assert hr[0] == pytest.approx(expected[0])

    @given(st.floats(min_value=-120.0, max_value=120.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_gradient_matches_finite_difference(self, weight):
        # Stay away from the kinks where the derivative is not defined.
        if abs(weight - round(weight)) < 1e-3:
            weight += 0.01
        eps = 1e-5
        grad = interpolated_hamming_rate_grad(np.array([weight]), scale=1.0, bits=8)[0]
        hi = interpolated_hamming_rate(np.array([weight + eps]), 1.0, 8)[0]
        lo = interpolated_hamming_rate(np.array([weight - eps]), 1.0, 8)[0]
        assert grad == pytest.approx((hi - lo) / (2 * eps), abs=1e-5)

    def test_gradient_zero_outside_range(self):
        grad = interpolated_hamming_rate_grad(np.array([1000.0, -1000.0]), 1.0, 8)
        assert np.all(grad == 0.0)

    def test_gradient_paper_example(self):
        """Fig. 7-(b) slopes (as d(HR)/dw): -1 at -0.62 and +0.125 at 6.4.

        The paper quotes the magnitudes with the opposite sign convention (the
        descent direction); the interpolation segments are the same.
        """
        grads = interpolated_hamming_rate_grad(np.array([-0.62, 6.4]), 1.0, 8)
        assert grads[0] == pytest.approx(-1.0)   # HR falls from 1.0 at -1 to 0.0 at 0
        assert grads[1] == pytest.approx(0.125)  # HR rises from 0.25 at 6 to 0.375 at 7


class TestLHRLoss:
    def _model(self):
        rng = np.random.default_rng(0)
        return Sequential(Linear(8, 8, rng=rng), Linear(8, 4, rng=rng))

    def test_layer_hamming_loss_backward_moves_toward_lower_hr(self):
        rng = np.random.default_rng(0)
        layer = Linear(16, 16, rng=rng)
        scale = 0.01
        loss = layer_hamming_loss(layer.weight, scale, bits=8)
        loss.backward()
        assert layer.weight.grad is not None
        # A gradient-descent step must not increase the surrogate HR.
        before = interpolated_hamming_rate(layer.weight.data, scale, 8).mean()
        stepped = layer.weight.data - 2e-4 * layer.weight.grad
        after = interpolated_hamming_rate(stepped, scale, 8).mean()
        assert after <= before + 1e-9

    def test_lhr_loss_sums_squared_layer_hr(self):
        model = self._model()
        scales = model_scales(model, bits=8)
        loss = lhr_loss(model, scales, bits=8, lam=1.0)
        manual = 0.0
        for name, layer in model.weight_layers():
            hr = interpolated_hamming_rate(layer.weight.data, scales[name], 8).mean()
            manual += hr ** 2
        assert loss.item() == pytest.approx(manual)

    def test_lhr_loss_scales_with_lambda(self):
        model = self._model()
        scales = model_scales(model, bits=8)
        l1 = lhr_loss(model, scales, 8, lam=1.0).item()
        l2 = lhr_loss(model, scales, 8, lam=2.5).item()
        assert l2 == pytest.approx(2.5 * l1)

    def test_lhr_loss_skips_layers_without_scale(self):
        model = self._model()
        assert lhr_loss(model, {}, 8, lam=1.0).item() == 0.0

    def test_regularizer_callable_and_refresh(self):
        model = self._model()
        reg = LHRRegularizer(scales=model_scales(model, 8), bits=8, lam=0.5)
        value = reg(model)
        assert value.item() > 0.0
        reg.refresh_scales(model)
        assert set(reg.scales) == {name for name, _ in model.weight_layers()}
