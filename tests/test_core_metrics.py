"""Tests for the Rtog / HM / HR metrics (paper Eq. 1, 3, 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    hamming_rate,
    hamming_value,
    rtog,
    rtog_trace,
    rtog_upper_bound,
    to_twos_complement_bits,
    weighted_hamming_rate,
)


class TestTwosComplementBits:
    def test_positive_value(self):
        planes = to_twos_complement_bits(np.array([5]), bits=8)
        assert planes.shape == (1, 8)
        assert list(planes[0]) == [1, 0, 1, 0, 0, 0, 0, 0]

    def test_negative_one_is_all_ones(self):
        planes = to_twos_complement_bits(np.array([-1]), bits=8)
        assert planes.sum() == 8

    def test_negative_value(self):
        # -128 = 0b10000000
        planes = to_twos_complement_bits(np.array([-128]), bits=8)
        assert planes.sum() == 1
        assert planes[0, 7] == 1

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            to_twos_complement_bits(np.array([128]), bits=8)
        with pytest.raises(ValueError):
            to_twos_complement_bits(np.array([-129]), bits=8)

    def test_non_integer_raises(self):
        with pytest.raises(ValueError):
            to_twos_complement_bits(np.array([1.5]), bits=8)

    def test_shape_preserved(self):
        values = np.arange(-8, 8).reshape(4, 4)
        assert to_twos_complement_bits(values, 8).shape == (4, 4, 8)


class TestHammingMetrics:
    def test_hamming_value_known(self):
        # 3 = 0b11 (2 ones), 4 = 0b100 (1 one), -1 = eight ones
        assert hamming_value(np.array([3, 4, -1]), bits=8) == 2 + 1 + 8

    def test_hamming_rate_bounds(self):
        assert hamming_rate(np.zeros(10, dtype=int), 8) == 0.0
        assert hamming_rate(np.full(10, -1, dtype=int), 8) == 1.0

    def test_hamming_rate_empty(self):
        assert hamming_rate(np.array([], dtype=int), 8) == 0.0

    def test_weighted_hamming_rate_defaults_to_size_weighting(self):
        a = np.zeros(10, dtype=int)          # HR 0
        b = np.full(30, -1, dtype=int)       # HR 1
        combined = weighted_hamming_rate([a, b], bits=8)
        assert combined == pytest.approx(0.75)

    def test_weighted_hamming_rate_explicit_weights(self):
        a = np.zeros(4, dtype=int)
        b = np.full(4, -1, dtype=int)
        assert weighted_hamming_rate([a, b], 8, weights=[3, 1]) == pytest.approx(0.25)

    def test_weighted_hamming_rate_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_hamming_rate([np.zeros(2, dtype=int)], 8, weights=[-1.0])

    @given(st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_hamming_rate_matches_popcount(self, values):
        codes = np.array(values)
        expected = sum(bin(v & 0xFF).count("1") for v in values) / (len(values) * 8)
        assert hamming_rate(codes, 8) == pytest.approx(expected)


class TestRtog:
    def test_no_toggle_means_zero(self):
        codes = np.array([-1, -1, -1, -1])
        bits_t = np.array([1, 0, 1, 0])
        assert rtog(codes, bits_t, bits_t, bits=8) == 0.0

    def test_all_toggle_equals_hr(self):
        codes = np.array([7, -3, 100, 0])
        ones = np.ones(4, dtype=int)
        zeros = np.zeros(4, dtype=int)
        assert rtog(codes, zeros, ones, bits=8) == pytest.approx(hamming_rate(codes, 8))

    def test_zero_weights_give_zero_rtog(self):
        codes = np.zeros(4, dtype=int)
        assert rtog(codes, np.zeros(4), np.ones(4), bits=8) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rtog(np.zeros(4, dtype=int), np.zeros(3), np.zeros(4), bits=8)

    def test_trace_length(self):
        codes = np.array([1, 2, 3])
        stream = np.array([[0, 1, 0], [1, 1, 0], [1, 0, 1], [0, 0, 1]])
        trace = rtog_trace(codes, stream, bits=8)
        assert trace.shape == (3,)

    def test_trace_matches_pairwise_rtog(self):
        generator = np.random.default_rng(0)
        codes = generator.integers(-128, 128, size=16)
        stream = generator.integers(0, 2, size=(10, 16))
        trace = rtog_trace(codes, stream, bits=8)
        for t in range(9):
            assert trace[t] == pytest.approx(rtog(codes, stream[t], stream[t + 1], bits=8))

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=2, max_value=12),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_rtog_never_exceeds_hr(self, cells, cycles, seed):
        """Equation 4: sup(Rtog) == HR, so every observed Rtog must be <= HR."""
        generator = np.random.default_rng(seed)
        codes = generator.integers(-128, 128, size=cells)
        stream = generator.integers(0, 2, size=(cycles, cells))
        trace = rtog_trace(codes, stream, bits=8)
        bound = rtog_upper_bound(codes, bits=8)
        assert np.all(trace <= bound + 1e-12)

    def test_upper_bound_equals_hr(self):
        codes = np.array([1, -5, 17, 99])
        assert rtog_upper_bound(codes, 8) == hamming_rate(codes, 8)
