"""Tests for the task-mapping strategies and the HR-aware annealer (Alg. 3)."""

import numpy as np
import pytest

from repro.core.task_mapping import (
    MAPPING_STRATEGIES,
    AnnealingConfig,
    MappingEvaluator,
    TaskMapping,
    build_mapping,
    hr_aware_mapping,
    random_mapping,
    sequential_mapping,
    zigzag_mapping,
)
from repro.pim.config import small_chip_config
from repro.pim.dataflow import Task
from repro.power.vf_table import VFTable

from tests.helpers import make_operator


def make_tasks(hr_spreads, chip_config, bits=8):
    """One task per entry; ``hr_spreads`` controls each task's HR via code spread."""
    tasks = []
    for i, spread in enumerate(hr_spreads):
        op = make_operator(f"op{i}", chip_config.macro.rows, chip_config.macro.banks,
                           seed=i, spread=spread)
        tasks.append(Task(task_id=i, operator_name=op.name, kind="conv", set_id=i,
                          codes=op.codes, bits=bits))
    return tasks


@pytest.fixture
def chip_config():
    return small_chip_config(groups=4, macros_per_group=2, banks=4, rows=8)


@pytest.fixture
def evaluator(chip_config):
    table = VFTable(nominal_voltage=chip_config.nominal_voltage,
                    nominal_frequency=chip_config.nominal_frequency,
                    signoff_ir_drop=chip_config.signoff_ir_drop)
    return MappingEvaluator(chip_config, table, mode="low_power", seed=0)


class TestBaselineStrategies:
    def test_sequential_fills_in_order(self, chip_config):
        tasks = make_tasks([10, 20, 30], chip_config)
        mapping = sequential_mapping(tasks, chip_config)
        assert mapping.assignment == {0: 0, 1: 1, 2: 2}
        mapping.validate(tasks)

    def test_zigzag_reverses_odd_groups(self, chip_config):
        tasks = make_tasks([10] * 4, chip_config)
        mapping = zigzag_mapping(tasks, chip_config)
        # Groups of 2 macros: group 0 forward (0, 1), group 1 reversed (3, 2).
        assert [mapping.macro_of(i) for i in range(4)] == [0, 1, 3, 2]

    def test_random_is_seeded_and_valid(self, chip_config):
        tasks = make_tasks([10] * 5, chip_config)
        a = random_mapping(tasks, chip_config, seed=7)
        b = random_mapping(tasks, chip_config, seed=7)
        assert a.assignment == b.assignment
        a.validate(tasks)

    def test_capacity_check(self, chip_config):
        tasks = make_tasks([10] * (chip_config.total_macros + 1), chip_config)
        with pytest.raises(ValueError):
            sequential_mapping(tasks, chip_config)

    def test_validate_rejects_double_assignment(self, chip_config):
        tasks = make_tasks([10, 10], chip_config)
        mapping = TaskMapping(chip=chip_config, assignment={0: 0, 1: 0})
        with pytest.raises(ValueError):
            mapping.validate(tasks)

    def test_build_mapping_dispatch(self, chip_config, evaluator):
        tasks = make_tasks([10, 30], chip_config)
        for strategy in MAPPING_STRATEGIES:
            mapping = build_mapping(strategy, tasks, chip_config, evaluator=evaluator,
                                    annealing=AnnealingConfig(steps=20))
            mapping.validate(tasks)
            assert mapping.strategy == strategy

    def test_build_mapping_unknown_strategy(self, chip_config):
        with pytest.raises(ValueError):
            build_mapping("best-effort", [], chip_config)

    def test_hr_aware_requires_evaluator(self, chip_config):
        tasks = make_tasks([10], chip_config)
        with pytest.raises(ValueError):
            build_mapping("hr_aware", tasks, chip_config)


class TestEvaluator:
    def test_grouping_by_macro_location(self, chip_config, evaluator):
        tasks = make_tasks([10, 50], chip_config)
        mapping = sequential_mapping(tasks, chip_config)   # both tasks share group 0
        evaluation = evaluator.evaluate(mapping, tasks)
        assert set(evaluation.group_levels) == {0}
        assert evaluation.power_mw > 0
        assert evaluation.effective_tops > 0

    def test_separating_high_and_low_hr_reduces_power(self, chip_config, evaluator):
        """Placing a high-HR and a low-HR task in the same group forces the group
        to the high level; separating them must not cost more power."""
        tasks = make_tasks([4, 60], chip_config)           # very low vs very high HR
        together = TaskMapping(chip=chip_config, assignment={0: 0, 1: 1})
        separated = TaskMapping(chip=chip_config, assignment={0: 0, 1: 2})
        power_together = evaluator.evaluate(together, tasks).power_mw
        power_separated = evaluator.evaluate(separated, tasks).power_mw
        assert power_separated <= power_together + 1e-9

    def test_empty_mapping(self, chip_config, evaluator):
        evaluation = evaluator.evaluate(TaskMapping(chip=chip_config), [])
        assert evaluation.power_mw == 0.0
        assert evaluation.score == 0.0


class TestHRAwareMapping:
    def test_anneal_not_worse_than_sequential(self, chip_config, evaluator):
        # Mix of very different HR values: the annealer should find a grouping at
        # least as good as naive sequential filling.
        tasks = make_tasks([4, 60, 5, 55, 6, 50], chip_config)
        sequential = sequential_mapping(tasks, chip_config)
        annealed = hr_aware_mapping(tasks, chip_config, evaluator,
                                    AnnealingConfig(steps=150, seed=3))
        annealed.validate(tasks)
        seq_score = evaluator.evaluate(sequential, tasks).score
        ann_score = evaluator.evaluate(annealed, tasks).score
        assert ann_score <= seq_score + 1e-9

    def test_anneal_is_deterministic_for_a_seed(self, chip_config, evaluator):
        tasks = make_tasks([4, 60, 5, 55], chip_config)
        a = hr_aware_mapping(tasks, chip_config, evaluator, AnnealingConfig(steps=60, seed=5))
        b = hr_aware_mapping(tasks, chip_config, evaluator, AnnealingConfig(steps=60, seed=5))
        assert a.assignment == b.assignment

    def test_group_tasks_helper(self, chip_config):
        tasks = make_tasks([10, 20, 30], chip_config)
        mapping = sequential_mapping(tasks, chip_config)
        groups = mapping.group_tasks(tasks)
        assert sorted(groups) == [0, 1]
        assert len(groups[0]) == 2 and len(groups[1]) == 1
