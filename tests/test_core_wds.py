"""Tests for WDS: weight distribution shift and shift compensation (Alg. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import hamming_rate
from repro.core.wds import (
    WDSPlan,
    choose_delta,
    int_range,
    matmul_with_wds,
    overflow_fraction,
    plan_wds,
    recommended_deltas,
    shift_compensation,
    shift_weights,
    shifted_hamming_rate,
)


def bell_shaped_codes(size: int, spread: float = 15.0, seed: int = 0) -> np.ndarray:
    generator = np.random.default_rng(seed)
    return np.clip(np.round(generator.laplace(0.0, spread, size=size)), -128, 127).astype(np.int64)


class TestShiftWeights:
    def test_simple_shift(self):
        assert list(shift_weights(np.array([-3, 0, 5]), 8, 8)) == [5, 8, 13]

    def test_clamps_at_int_max(self):
        shifted = shift_weights(np.array([125, 127]), 8, 8)
        assert list(shifted) == [127, 127]

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            shift_weights(np.array([0]), -4, 8)

    def test_int_range(self):
        assert int_range(8) == (-128, 127)
        assert int_range(4) == (-8, 7)

    def test_overflow_fraction(self):
        codes = np.array([0, 100, 125, 127])
        assert overflow_fraction(codes, 8, 8) == pytest.approx(0.5)
        assert overflow_fraction(codes, 0, 8) == 0.0


class TestShiftCompensation:
    def test_vector_input(self):
        output = np.array([10.0, 20.0])
        inputs = np.array([1.0, 2.0, 3.0])
        corrected = shift_compensation(output, inputs, delta=4)
        assert np.allclose(corrected, output - 4 * 6.0)

    def test_matrix_input_per_column(self):
        inputs = np.array([[1.0, 2.0], [3.0, 4.0]])   # columns sum to 4 and 6
        output = np.zeros((3, 2))
        corrected = shift_compensation(output, inputs, delta=2)
        assert np.allclose(corrected, [[-8, -12]] * 3)

    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=40, deadline=None)
    def test_matmul_with_wds_exact_when_no_clamp(self, seed, delta):
        """Algorithm 1 is numerically exact as long as no weight clamps."""
        generator = np.random.default_rng(seed)
        weights = generator.integers(-100, 100 - delta, size=(6, 5))
        inputs = generator.integers(-7, 8, size=5)
        result = matmul_with_wds(weights, inputs, delta=delta, bits=8)
        assert np.allclose(result, weights @ inputs)

    def test_matmul_with_wds_batch(self):
        generator = np.random.default_rng(3)
        weights = generator.integers(-50, 50, size=(4, 6))
        inputs = generator.integers(-3, 4, size=(6, 5))
        result = matmul_with_wds(weights, inputs, delta=8, bits=8)
        assert np.allclose(result, weights @ inputs)

    def test_clamping_introduces_bounded_error(self):
        weights = np.array([[126, 0]])
        inputs = np.array([2, 3])
        exact = weights @ inputs
        approx = matmul_with_wds(weights, inputs, delta=8, bits=8)
        # 126+8 clamps to 127, losing 7 counts on a single weight * input 2.
        assert abs(float(approx[0] - exact[0])) == 7 * 2


class TestDeltaSelection:
    def test_recommended_deltas_int8_and_int4(self):
        assert recommended_deltas(8) == [8, 16]
        assert recommended_deltas(4) == [2, 4]

    def test_shift_reduces_hr_for_bell_shaped_weights(self):
        """The core WDS claim: +8/+16 lowers HR of zero-centred weight codes."""
        codes = bell_shaped_codes(4096)
        base = hamming_rate(codes, 8)
        assert shifted_hamming_rate(codes, 8, 8) < base
        assert shifted_hamming_rate(codes, 16, 8) < base

    def test_misaligned_delta_increases_hr_on_lhr_clustered_weights(self):
        """Fig. 14: after LHR clusters weights at low-HR codes (0, +-8, +-16, ...),
        a delta that is not aligned with that grid increases HR while an aligned
        one decreases it."""
        raw = bell_shaped_codes(4096)
        clustered = np.clip(8 * np.round(raw / 8.0), -128, 127).astype(np.int64)
        base = hamming_rate(clustered, 8)
        assert shifted_hamming_rate(clustered, 3, 8) > base
        assert shifted_hamming_rate(clustered, 8, 8) < base

    def test_choose_delta_prefers_recommended(self):
        codes = bell_shaped_codes(4096)
        assert choose_delta(codes, 8) in (8, 16)

    def test_choose_delta_rejects_overflowing_candidates(self):
        codes = np.full(100, 120, dtype=np.int64)
        assert choose_delta(codes, 8, max_overflow=0.01) == 0

    def test_choose_delta_zero_for_already_optimal(self):
        codes = np.zeros(64, dtype=np.int64)
        assert choose_delta(codes, 8) == 0


class TestWDSPlan:
    def test_plan_records_before_after(self):
        layers = {"a": bell_shaped_codes(512, seed=1), "b": bell_shaped_codes(512, seed=2)}
        plan = plan_wds(layers, bits=8, delta=8)
        assert set(plan.deltas) == {"a", "b"}
        assert plan.mean_hr_after < plan.mean_hr_before
        assert all(v == 8 for v in plan.deltas.values())
        assert plan.delta_for("a") == 8
        assert plan.delta_for("missing") == 0

    def test_auto_plan_never_increases_hr(self):
        layers = {f"l{i}": bell_shaped_codes(256, seed=i) for i in range(4)}
        plan = plan_wds(layers, bits=8, delta=None)
        for name in layers:
            assert plan.hr_after[name] <= plan.hr_before[name] + 1e-12

    def test_empty_plan(self):
        plan = plan_wds({}, bits=8)
        assert plan.mean_hr_before == 0.0
        assert plan.mean_hr_after == 0.0
        assert plan.max_hr_after == 0.0
