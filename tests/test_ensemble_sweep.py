"""Ensemble work units in the sweep stack.

Three contracts:

* :class:`~repro.sweep.spec.EnsembleSpec` grouping — pending runs batch by
  shared physics (:func:`~repro.sweep.spec.batch_key`), preserve expansion
  order, respect the member cap, and refuse mixed-physics members;
* cross-executor determinism — one randomized mini-sweep executed serial,
  pooled, supervised-pool-with-injected-faults and ensemble-batched (serial
  and pooled) produces bit-identical records and aggregates on every path;
* seed derivation — ``run_seed``/``ensemble_seed`` golden values are pinned
  and their ``SeedSequence`` spawn-key shapes stay disjoint, so no future
  refactor can silently reshuffle every sweep in the repo.
"""

import dataclasses

import numpy as np
import pytest

from repro.sim import clear_level_cache
from repro.sweep import (
    EnsembleSpec,
    PoolExecutor,
    RetryPolicy,
    SerialExecutor,
    SweepRunner,
    SweepSpec,
    WorkloadSpec,
    batch_key,
    ensemble_seed,
    execute_ensemble,
    execute_run,
    group_into_ensembles,
    run_seed,
)
from repro.sweep.faults import FaultSpec, injected_faults


def mini_spec(seed_mode="per_point", traces="none"):
    """A randomized mini-sweep: two controllers x two betas x three seeds on
    one synthetic workload — big enough to exercise grouping, small enough
    for four executor passes in one test."""
    workload = WorkloadSpec(builder="synthetic", groups=4, macros_per_group=4,
                            banks=4, rows=8, operator_rows=16, n_operators=8,
                            code_spread=30.0, mapping="sequential",
                            label="ens-sweep")
    return SweepSpec(name="ens", workloads=(workload,),
                     controllers=("booster", "dvfs"), betas=(5, 20),
                     cycles=400, flip_means=(0.8,), monitor_noises=(0.01,),
                     seeds=3, master_seed=13, seed_mode=seed_mode,
                     traces=traces)


class TestEnsembleSpec:
    def test_grouping_preserves_order_and_physics(self):
        runs = mini_spec().expand()
        ensembles = group_into_ensembles(runs)
        flattened = [run for ens in ensembles for run in ens.runs]
        assert flattened == list(runs)             # expansion order kept
        assert sum(ens.n_runs for ens in ensembles) == len(runs)
        for ens in ensembles:
            keys = {batch_key(run) for run in ens.runs}
            assert len(keys) == 1

    def test_member_cap(self):
        runs = mini_spec().expand()
        ensembles = group_into_ensembles(runs, max_members=4)
        assert all(ens.n_runs <= 4 for ens in ensembles)
        assert sum(ens.n_runs for ens in ensembles) == len(runs)
        with pytest.raises(ValueError):
            group_into_ensembles(runs, max_members=0)

    def test_singleton_and_run_id(self):
        runs = mini_spec().expand()
        single = EnsembleSpec(runs=(runs[0],))
        assert single.n_runs == 1
        assert single.run_id == runs[0].run_id
        pair = EnsembleSpec(runs=tuple(runs[:2]))
        assert pair.run_id == f"{runs[0].run_id}(+1)"
        assert pair.workload == runs[0].workload

    def test_mixed_physics_rejected(self):
        runs = mini_spec().expand()
        other = dataclasses.replace(runs[1], flip_mean=0.42)
        with pytest.raises(ValueError):
            EnsembleSpec(runs=(runs[0], other))
        with pytest.raises(ValueError):
            EnsembleSpec(runs=())

    def test_execute_ensemble_matches_execute_run(self):
        runs = mini_spec().expand()[:4]
        clear_level_cache()
        batched = execute_ensemble(EnsembleSpec(runs=tuple(runs)))
        clear_level_cache()
        for run, record in zip(runs, batched):
            assert dataclasses.asdict(record) == \
                dataclasses.asdict(execute_run(run))


class TestCrossExecutorDeterminism:
    """The same mini-sweep must be bit-identical on every execution path."""

    @staticmethod
    def records_of(result):
        return {r.run_id: dataclasses.asdict(r) for r in result.records}

    @staticmethod
    def aggregates_of(result):
        return [dataclasses.asdict(point)
                for point in result.aggregate(bootstrap_resamples=50)]

    @pytest.mark.parametrize("seed_mode", ["per_point", "shared"])
    def test_all_paths_bit_identical(self, seed_mode):
        spec = mini_spec(seed_mode=seed_mode)
        policy = RetryPolicy(max_attempts=3)
        fault = FaultSpec(kind="raise", match="s001", times=1)

        clear_level_cache()
        baseline = SweepRunner(spec, SerialExecutor()).run()
        passes = {}
        clear_level_cache()
        passes["pool"] = SweepRunner(spec, PoolExecutor(processes=2)).run()
        clear_level_cache()
        with injected_faults(fault):
            passes["supervised+faults"] = SweepRunner(
                spec, PoolExecutor(processes=2, retry_policy=policy,
                                   run_timeout=60.0)).run()
        clear_level_cache()
        passes["ensemble-serial"] = SweepRunner(
            spec, SerialExecutor(), ensembles=True).run()
        clear_level_cache()
        passes["ensemble-pool"] = SweepRunner(
            spec, PoolExecutor(processes=2), ensembles=4).run()
        clear_level_cache()
        with injected_faults(fault):
            passes["ensemble-supervised+faults"] = SweepRunner(
                spec, PoolExecutor(processes=2, retry_policy=policy,
                                   run_timeout=60.0), ensembles=True).run()

        base_records = self.records_of(baseline)
        base_aggregates = self.aggregates_of(baseline)
        for name, result in passes.items():
            assert not result.failed_runs, name
            assert self.records_of(result) == base_records, name
            assert self.aggregates_of(result) == base_aggregates, name

    def test_ensemble_resume_completes_partial_groups(self, tmp_path):
        """A checkpoint from a per-run pass resumes under ensemble batching
        (partial groups) with bit-identical final records."""
        spec = mini_spec()
        clear_level_cache()
        baseline = SweepRunner(spec, SerialExecutor()).run()
        path = str(tmp_path / "ck.json")
        kept = baseline.sorted_records()[: len(baseline.records) // 2]
        checkpoint = type(baseline)(spec=spec, records=list(kept))
        checkpoint.save(path)
        clear_level_cache()
        resumed = SweepRunner(spec, SerialExecutor(), ensembles=True) \
            .run(resume_from=path)
        assert self.records_of(resumed) == self.records_of(baseline)


class TestSeedDerivation:
    """Golden-value pins: these constants are the repo's reproducibility
    anchor — a change here reshuffles every sweep ever recorded."""

    GOLDEN_RUN_SEEDS = {
        (0, 0, 0): 4088532484,
        (0, 0, 1): 3581274545,
        (0, 1, 0): 3953331965,
        (7, 3, 2): 4014525388,
    }
    GOLDEN_ENSEMBLE_SEEDS = {
        (0, 0): 3757552657,
        (0, 1): 673228719,
        (7, 2): 3831650445,
        (11, 0): 213907198,
    }

    def test_run_seed_golden_values(self):
        for args, expected in self.GOLDEN_RUN_SEEDS.items():
            assert run_seed(*args) == expected, args

    def test_ensemble_seed_golden_values(self):
        for args, expected in self.GOLDEN_ENSEMBLE_SEEDS.items():
            assert ensemble_seed(*args) == expected, args

    def test_spawn_key_shapes_stay_disjoint(self):
        """``run_seed`` spawns with a 2-tuple key and ``ensemble_seed`` with
        a 1-tuple, so the two derivations can never collide — even at the
        same indices."""
        for master in (0, 7, 11):
            for a in range(4):
                for b in range(4):
                    assert run_seed(master, a, b) != ensemble_seed(master, a)
                    assert run_seed(master, a, b) != ensemble_seed(master, b)

    def test_seed_values_fit_uint32(self):
        for master in (0, 1, 123456789):
            assert 0 <= run_seed(master, 5, 9) < 2 ** 32
            assert 0 <= ensemble_seed(master, 5) < 2 ** 32
