"""Chaos tests: the fault-injection harness and the fault-tolerance layer.

The load-bearing guarantees:

* injection is deterministic (pure function of salt/fault/target/attempt)
  and **never active by default**;
* supervised executors retry transient failures — raised exceptions, killed
  workers, hung runs — and the recovered sweep's records are *bit-identical*
  to a fault-free serial baseline;
* permanent failures are quarantined into ``SweepResult.failed_runs``
  (carried through checkpoints, excluded from aggregation) instead of
  aborting the sweep;
* checkpoint and store corruption is detected by content digests and
  recovered from (``.bak`` fallback / entry re-derivation), keeping resumes
  and shared-store sweeps equivalent to undamaged runs.

The headline all-faults-armed equivalence test doubles as the CI ``chaos``
leg's core; ``REPRO_CHAOS=1`` widens the parametrization.
"""

import json
import logging
import os
import warnings

import pytest

from repro.sim.level_cache import clear_level_cache, detach_shared_store
from repro.sim.shared_store import SharedPhysicsStore
from repro.sweep import (
    FailedRun,
    PoolExecutor,
    RetryPolicy,
    SerialExecutor,
    SweepRunner,
    SweepResult,
    SweepSpec,
    WorkloadSpec,
)
from repro.sweep import faults
from repro.sweep.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    injected_faults,
    maybe_fail_run,
)

CHAOS_EXTENDED = bool(os.environ.get("REPRO_CHAOS"))

#: Fast synthetic workload on a tiny chip: builds in milliseconds, no QAT.
TINY = WorkloadSpec(builder="synthetic", groups=2, macros_per_group=2, banks=4,
                    rows=8, n_operators=4, label="tiny")


def tiny_spec(**overrides) -> SweepSpec:
    defaults = dict(name="t", workloads=(TINY,), controllers=("booster",),
                    betas=(10, 50), cycles=120, seeds=2, master_seed=7)
    defaults.update(overrides)
    return SweepSpec(**defaults)


def records_as_dicts(result: SweepResult):
    return [r.to_json_dict() for r in result.sorted_records()]


@pytest.fixture(autouse=True)
def disarmed():
    """No fault plan (programmatic or env-cached) leaks across tests."""
    faults.disarm_faults()
    yield
    faults.disarm_faults()


@pytest.fixture
def baseline():
    """Fault-free serial records of the default tiny spec."""
    return SweepRunner(tiny_spec(), SerialExecutor()).run()


# --------------------------------------------------------------------- #
# the registry itself
# --------------------------------------------------------------------- #
class TestFaultRegistry:
    def test_never_active_by_default(self):
        assert active_plan() is None
        maybe_fail_run("t/p0000/s000")          # must be a no-op

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="explode")
        with pytest.raises(ValueError):
            FaultSpec(kind="raise", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="raise", times=0)

    def test_raise_fires_on_match_only(self):
        with injected_faults(FaultSpec(kind="raise", match="p0001")):
            maybe_fail_run("t/p0000/s000")      # no match: silent
            with pytest.raises(InjectedFault):
                maybe_fail_run("t/p0001/s000")

    def test_times_bounds_by_attempt_number(self):
        """A ``times=1`` fault fires on attempt 1 and spares every retry —
        stateless in the attempt, so it survives worker death."""
        with injected_faults(FaultSpec(kind="raise", times=1)):
            with pytest.raises(InjectedFault):
                maybe_fail_run("t/p0000/s000")
            faults.set_current_attempt(2)
            try:
                maybe_fail_run("t/p0000/s000")  # retry: clean
            finally:
                faults.set_current_attempt(1)
            with pytest.raises(InjectedFault):
                maybe_fail_run("t/p0000/s000")  # attempt 1 again: fires again

    def test_probability_thinning_is_deterministic(self):
        fault = FaultSpec(kind="raise", probability=0.5)
        plan_a = FaultPlan([fault], salt=1)
        targets = [f"t/p{i:04d}/s000" for i in range(400)]
        picked_a = [t for t in targets if plan_a._selects(fault, t)]
        assert picked_a == [t for t in targets if plan_a._selects(fault, t)]
        assert 0.3 < len(picked_a) / len(targets) < 0.7
        picked_b = [t for t in targets
                    if FaultPlan([fault], salt=2)._selects(fault, t)]
        assert picked_a != picked_b             # the salt reshuffles selection

    def test_env_arming_and_json_roundtrip(self, monkeypatch):
        plan = FaultPlan([FaultSpec(kind="raise", match="p0002", times=2)],
                         salt=5)
        monkeypatch.setenv("REPRO_FAULTS", plan.to_json())
        monkeypatch.setattr(faults, "_env_plan", faults._UNSET)
        armed = active_plan()
        assert armed is not None
        assert armed.salt == 5 and armed.faults == plan.faults

    def test_checkpoint_fault_is_counter_gated(self, tmp_path):
        path = str(tmp_path / "f.bin")
        with open(path, "wb") as handle:
            handle.write(b"x" * 100)
        with injected_faults(FaultSpec(kind="checkpoint_truncate", times=1)):
            faults.checkpoint_fault(path)
            assert os.path.getsize(path) == 50
            faults.checkpoint_fault(path)       # budget spent: no-op
            assert os.path.getsize(path) == 50


# --------------------------------------------------------------------- #
# retry and quarantine
# --------------------------------------------------------------------- #
class TestSerialRetryQuarantine:
    def test_transient_raise_retried_bit_identical(self, baseline):
        executor = SerialExecutor(retry_policy=RetryPolicy(max_attempts=3))
        with injected_faults(FaultSpec(kind="raise", match="p0001/s000",
                                       times=1)):
            result = SweepRunner(tiny_spec(), executor).run()
        assert not result.failed_runs
        assert records_as_dicts(result) == records_as_dicts(baseline)

    def test_permanent_raise_quarantined_not_fatal(self, baseline):
        executor = SerialExecutor(retry_policy=RetryPolicy(max_attempts=2))
        with injected_faults(FaultSpec(kind="raise", match="p0001/s000",
                                       times=99)):
            result = SweepRunner(tiny_spec(), executor).run()
        assert [f.run_id for f in result.failed_runs] == ["t/p0001/s000"]
        assert result.failed_runs[0].attempts == 2
        assert "InjectedFault" in result.failed_runs[0].error
        assert len(result.records) == len(baseline.records) - 1
        # Aggregation runs over what completed; the damaged point has n-1.
        by_point = {s.point_index: s.n_seeds for s in result.aggregate()}
        assert by_point == {0: 2, 1: 1}

    def test_no_policy_keeps_raise_through_semantics(self):
        with injected_faults(FaultSpec(kind="raise", match="p0000/s000")):
            with pytest.raises(InjectedFault):
                SweepRunner(tiny_spec(), SerialExecutor()).run()

    def test_failed_runs_survive_checkpoints_and_resume_retries_them(
            self, tmp_path, baseline):
        path = str(tmp_path / "q.json")
        executor = SerialExecutor(retry_policy=RetryPolicy(max_attempts=1))
        with injected_faults(FaultSpec(kind="raise", match="p0000/s001",
                                       times=99)):
            first = SweepRunner(tiny_spec(), executor).run(save_path=path)
        assert len(first.failed_runs) == 1
        assert len(SweepResult.load(path).failed_runs) == 1
        # Resume with the fault gone: the quarantined run is retried, not
        # carried forward, and the merged result matches the fault-free one.
        resumed = SweepRunner(tiny_spec(), executor).run(resume_from=path)
        assert not resumed.failed_runs
        assert records_as_dicts(resumed) == records_as_dicts(baseline)


POLICY = RetryPolicy(max_attempts=2)


class TestSupervisedPool:
    def test_supervised_fault_free_bit_identical(self, baseline):
        executor = PoolExecutor(processes=2, chunksize=1,
                                retry_policy=RetryPolicy(max_attempts=3),
                                run_timeout=60.0)
        result = SweepRunner(tiny_spec(), executor).run()
        assert not result.failed_runs
        assert records_as_dicts(result) == records_as_dicts(baseline)

    def test_worker_kill_recovered_bit_identical(self, baseline):
        """An injected ``os._exit`` mid-run silently loses the in-flight pool
        task; the deadline watchdog must rebuild the fleet and requeue."""
        executor = PoolExecutor(processes=2, chunksize=1,
                                retry_policy=POLICY, run_timeout=0.75)
        with injected_faults(FaultSpec(kind="kill", match="p0000/s001",
                                       times=1)):
            result = SweepRunner(tiny_spec(), executor).run()
        assert not result.failed_runs
        assert records_as_dicts(result) == records_as_dicts(baseline)

    def test_hung_run_recovered_bit_identical(self, baseline):
        executor = PoolExecutor(processes=2, chunksize=1,
                                retry_policy=POLICY, run_timeout=0.75)
        with injected_faults(FaultSpec(kind="hang", match="p0001/s001",
                                       times=1, hang_seconds=60.0)):
            result = SweepRunner(tiny_spec(), executor).run()
        assert not result.failed_runs
        assert records_as_dicts(result) == records_as_dicts(baseline)

    def test_permanent_kill_quarantined(self, baseline):
        executor = PoolExecutor(processes=2, chunksize=1,
                                retry_policy=POLICY, run_timeout=0.75)
        with injected_faults(FaultSpec(kind="kill", match="p0001/s000",
                                       times=99)):
            result = SweepRunner(tiny_spec(), executor).run()
        assert [f.run_id for f in result.failed_runs] == ["t/p0001/s000"]
        assert "timed out or lost" in result.failed_runs[0].error
        assert len(result.records) == len(baseline.records) - 1

    def test_supervised_map_keeps_spec_order(self, baseline):
        """``run_sweeps`` zips records positionally, so the supervised map
        must return one outcome per run in expansion order."""
        from repro.sweep import execute_run
        executor = PoolExecutor(processes=2, chunksize=1,
                                retry_policy=POLICY, run_timeout=60.0)
        runs = tiny_spec().expand()
        outcomes = executor.map(execute_run, runs)
        assert [o.run_id for o in outcomes] == [r.run_id for r in runs]


# --------------------------------------------------------------------- #
# the headline acceptance test: everything armed at once
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("salt", [0] + ([1, 2] if CHAOS_EXTENDED else []))
def test_chaos_equivalence_all_faults_armed(tmp_path, salt):
    """Worker kill + hung run + transient raise + checkpoint corruption +
    store byte-flips, all at once: the supervised pool sweep completes via
    retry/recovery and its records are bit-identical to a fault-free serial
    baseline."""
    clear_level_cache()
    detach_shared_store()
    spec = tiny_spec(seeds=2)
    baseline = SweepRunner(spec, SerialExecutor()).run()
    clear_level_cache()

    path = str(tmp_path / "chaos.json")
    store_dir = str(tmp_path / "store")
    executor = PoolExecutor(processes=2, chunksize=1,
                            retry_policy=RetryPolicy(max_attempts=2),
                            run_timeout=0.9,
                            shared_cache_dir=store_dir)
    plan = [
        FaultSpec(kind="kill", match="p0000/s000", times=1),
        FaultSpec(kind="hang", match="p0001/s001", times=1, hang_seconds=60.0),
        FaultSpec(kind="raise", match="p0000/s001", times=1),
        FaultSpec(kind="checkpoint_corrupt", times=1),
        FaultSpec(kind="store_flip", times=1),
    ]
    try:
        with injected_faults(*plan, salt=salt), warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = SweepRunner(spec, executor).run(
                save_path=path, checkpoint_every=1)
    finally:
        clear_level_cache()
        detach_shared_store()

    assert not result.failed_runs
    assert records_as_dicts(result) == records_as_dicts(baseline)
    # The store survived the byte-flips: corruption was quarantined, not
    # served (post-mortem evidence or a republished clean entry remains).
    store = SharedPhysicsStore(store_dir)
    assert store.stats()["entries"] >= 0      # index still parses
    # The final checkpoint (or its rolling .bak) resumes to the same sweep.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        resumed = SweepRunner(spec, SerialExecutor()).run(resume_from=path)
    assert records_as_dicts(resumed) == records_as_dicts(baseline)


# --------------------------------------------------------------------- #
# checkpoint integrity
# --------------------------------------------------------------------- #
class TestCheckpointIntegrity:
    def test_save_writes_digest_and_load_verifies(self, tmp_path, baseline):
        path = str(tmp_path / "r.json")
        baseline.save(path)
        payload = json.load(open(path))
        assert payload["integrity"]["algorithm"] == "sha256"
        assert records_as_dicts(SweepResult.load(path)) \
            == records_as_dicts(baseline)

    def test_flipped_byte_fails_digest(self, tmp_path, baseline):
        path = str(tmp_path / "r.json")
        baseline.save(path)
        raw = open(path, "rb").read()
        # Flip a metrics digit without breaking the JSON syntax.
        target = raw.replace(b'"seed_index": 0', b'"seed_index": 9', 1)
        assert target != raw
        open(path, "wb").write(target)
        with pytest.raises(ValueError, match="digest mismatch"):
            SweepResult.load(path)

    def test_bak_rotation_keeps_last_good(self, tmp_path, baseline):
        path = str(tmp_path / "r.json")
        baseline.save(path)
        baseline.save(path)
        assert os.path.exists(path + ".bak")
        assert records_as_dicts(SweepResult.load(path + ".bak")) \
            == records_as_dicts(baseline)

    def test_load_resumable_fallback_chain(self, tmp_path, baseline):
        path = str(tmp_path / "r.json")
        baseline.save(path)
        baseline.save(path)                    # rotate a good .bak in place
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        with pytest.warns(RuntimeWarning, match="corrupt"):
            recovered = SweepResult.load_resumable(path)
        assert records_as_dicts(recovered) == records_as_dicts(baseline)
        # Both damaged: explicit clean start, not a stack trace.
        with open(path + ".bak", "r+b") as handle:
            handle.truncate(10)
        with pytest.warns(RuntimeWarning) as caught:
            assert SweepResult.load_resumable(path).records == []
        assert any("clean start" in str(w.message) for w in caught)

    def test_load_resumable_missing_is_callers_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SweepResult.load_resumable(str(tmp_path / "nope.json"))

    def test_pre_integrity_checkpoints_still_load(self, tmp_path, baseline):
        path = str(tmp_path / "r.json")
        baseline.save(path)
        payload = json.load(open(path))
        del payload["integrity"]
        json.dump(payload, open(path, "w"))
        assert records_as_dicts(SweepResult.load(path)) \
            == records_as_dicts(baseline)


# --------------------------------------------------------------------- #
# satellite: map-only fallback must be loud about checkpoints
# --------------------------------------------------------------------- #
class MapOnlyExecutor:
    def map(self, fn, runs):
        return [fn(run) for run in runs]


def test_map_only_executor_warns_when_checkpointing_degrades(tmp_path):
    spec = tiny_spec()
    path = str(tmp_path / "maponly.json")
    with pytest.warns(RuntimeWarning, match="imap_unordered"):
        SweepRunner(spec, MapOnlyExecutor()).run(
            save_path=path, checkpoint_every=1)
    # Without checkpoint_every there is nothing to degrade: no warning.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        SweepRunner(spec, MapOnlyExecutor()).run(save_path=path)


# --------------------------------------------------------------------- #
# retry budgets across resume + supervision telemetry
# --------------------------------------------------------------------- #
class TestRetryBudgetsAndTelemetry:
    def test_resume_retries_exhausted_runs_under_new_policy(
            self, tmp_path, baseline):
        """A new RetryPolicy on resume grants quarantined runs a fresh budget.

        The fault fires on attempts 1-2; the first pass allows only 2, so
        the run exhausts and quarantines.  Resuming under ``max_attempts=3``
        (with jittered backoff, for good measure) retries it from attempt 1
        — attempt 3 clears the fault — and the merged result is bit-identical
        to the fault-free baseline.
        """
        path = str(tmp_path / "q.json")
        with injected_faults(FaultSpec(kind="raise", match="p0000/s001",
                                       times=2)):
            tight = SerialExecutor(retry_policy=RetryPolicy(max_attempts=2))
            first = SweepRunner(tiny_spec(), tight).run(save_path=path)
            assert [f.run_id for f in first.failed_runs] == ["t/p0000/s001"]
            assert first.failed_runs[0].attempts == 2
            assert tight.stats.retries == 1

            generous = SerialExecutor(retry_policy=RetryPolicy(
                max_attempts=3, backoff=0.001, jitter="decorrelated",
                jitter_salt=11))
            resumed = SweepRunner(tiny_spec(), generous).run(resume_from=path)
        assert not resumed.failed_runs
        assert generous.stats.retries == 2
        assert records_as_dicts(resumed) == records_as_dicts(baseline)

    def test_checkpoint_log_reports_retry_totals(self, tmp_path, caplog):
        path = str(tmp_path / "c.json")
        executor = SerialExecutor(retry_policy=RetryPolicy(max_attempts=3))
        with injected_faults(FaultSpec(kind="raise", match="p0000/s000",
                                       times=1)):
            with caplog.at_level(logging.INFO, logger="repro.sweep"):
                SweepRunner(tiny_spec(), executor).run(save_path=path,
                                                       checkpoint_every=1)
        lines = [r.message for r in caplog.records
                 if "checkpoint at" in r.message]
        assert lines
        assert "0 failed, 1 retried" in lines[-1]

    def test_checkpoint_log_reports_failure_totals(self, tmp_path, caplog):
        path = str(tmp_path / "c.json")
        executor = SerialExecutor(retry_policy=RetryPolicy(max_attempts=1))
        with injected_faults(FaultSpec(kind="raise", match="p0000/s000",
                                       times=9)):
            with caplog.at_level(logging.INFO, logger="repro.sweep"):
                SweepRunner(tiny_spec(), executor).run(save_path=path,
                                                       checkpoint_every=1)
        lines = [r.message for r in caplog.records
                 if "checkpoint at" in r.message]
        assert lines
        assert "1 failed, 0 retried" in lines[-1]


# --------------------------------------------------------------------- #
# fault attribution (FailedRun.fault)
# --------------------------------------------------------------------- #
class TestFaultAttribution:
    def test_describe_run_faults_is_pure_and_parent_computable(self):
        """Attribution is a pure function of the plan — computable from any
        process holding it, including the parent of a killed worker."""
        with injected_faults(FaultSpec(kind="kill", match="p0001", times=2),
                             FaultSpec(kind="raise", match="p0001", times=1)):
            assert faults.describe_run_faults("t/p0001/s000", 3) == \
                "kill@1,raise@1,kill@2"
            assert faults.describe_run_faults("t/p0000/s000", 3) == ""
        assert faults.describe_run_faults("t/p0001/s000", 3) == ""

    def test_failed_run_carries_fault_attribution(self):
        executor = SerialExecutor(retry_policy=RetryPolicy(max_attempts=2))
        with injected_faults(FaultSpec(kind="raise", match="p0001/s000",
                                       times=99)):
            result = SweepRunner(tiny_spec(), executor).run()
        assert [f.fault for f in result.failed_runs] == ["raise@1,raise@2"]
        # Round-trips through JSON; payloads predating the field still load.
        payload = result.failed_runs[0].to_json_dict()
        assert FailedRun.from_json_dict(payload).fault == "raise@1,raise@2"
        payload.pop("fault")
        assert FailedRun.from_json_dict(payload).fault == ""
