"""Tests for the closed-form failure-timeline kernels.

Two layers: direct unit tests of the greedy min-gap selection
(:mod:`repro.sim.kernels`) against a brute-force model of the reference
semantics, and randomized end-to-end property tests over the shared corpus
(``tests.helpers``) asserting the full oracle chain — reference == scan ==
batched == kernel == ensemble, bit for bit — on failure-dense workloads
across all controllers, including multi-macro Sets and group-straddling Sets
(which route around the kernels through the heap scheduler, and must keep
agreeing when both paths mix in one run).
"""

import numpy as np
import pytest

from repro.sim.kernels import (
    KERNEL_NAMES,
    active_kernel,
    frontier_key,
    merge_candidates,
    select_failures,
    set_kernel,
)
from repro.sweep import build_compiled_workload

from tests.helpers import (
    assert_oracle_chain,
    corpus_scenarios,
    random_runtime_kwargs,
    random_workload_spec,
    synthetic_spec,
)

SHIFT = 4                                  # test streams use rows < 16


def decode(keys, shift=SHIFT):
    mask = (1 << shift) - 1
    return [(key >> shift, key & mask) for key in keys]


# ---------------------------------------------------------------------- #
# the selection rule, modelled brute-force
# ---------------------------------------------------------------------- #
def brute_force_select(per_row, n_cycles, recompute):
    """Reference-loop semantics for one Set at a constant level.

    Walks every cycle and every row in visit order, maintaining per-row
    stall-until bounds exactly as the runtime does: a failure at ``(f, r)``
    stalls rows ``<= r`` from ``f + 1`` and rows ``> r`` from ``f``.
    """
    stall_until = [0] * len(per_row)
    candidates = [set(c) for c in per_row]
    selected = []
    for cycle in range(n_cycles):
        for row, cand in enumerate(candidates):
            if stall_until[row] > cycle or cycle not in cand:
                continue
            selected.append((cycle, row))
            if recompute > 0:
                for other in range(len(per_row)):
                    start = cycle + 1 if other <= row else cycle
                    stall_until[other] = max(stall_until[other],
                                             start + recompute)
    return selected


class TestSelectFailures:
    def make_merged(self, per_row):
        return merge_candidates([np.asarray(c, dtype=np.int64)
                                 for c in per_row],
                                list(range(len(per_row))), SHIFT)

    def select(self, merged, end_cycle, recompute, start_cycle=0):
        start = frontier_key(start_cycle, -1, SHIFT)
        keys, frontier = select_failures(merged, end_cycle, recompute, start)
        return decode(keys), frontier

    @pytest.mark.parametrize("recompute", [0, 1, 3, 12])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force(self, recompute, seed):
        rng = np.random.default_rng(seed)
        n_cycles = 300
        rows = int(rng.integers(1, 5))
        per_row = [np.flatnonzero(rng.random(n_cycles) < 0.25)
                   for _ in range(rows)]
        merged = self.make_merged(per_row)
        selected, _ = self.select(merged, n_cycles, recompute)
        assert selected == brute_force_select(per_row, n_cycles, recompute)

    def test_zero_recompute_selects_every_candidate(self):
        merged = self.make_merged([[1, 5, 9], [1, 2, 9]])
        selected, _ = self.select(merged, 10, 0)
        assert selected == [(1, 0), (1, 1), (2, 1), (5, 0), (9, 0), (9, 1)]

    def test_frontier_resumes_across_spans(self):
        """Splitting the horizon at arbitrary points must not change the
        selection — the frontier key is the whole carry-over state."""
        rng = np.random.default_rng(7)
        per_row = [np.flatnonzero(rng.random(400) < 0.3) for _ in range(3)]
        merged = self.make_merged(per_row)
        whole, _ = self.select(merged, 400, 5)
        for split in (0, 1, 57, 123, 399, 400):
            first, frontier = self.select(merged, split, 5)
            rest_keys, _ = select_failures(merged, 400, 5, frontier)
            # Candidates in [split, frontier) are suppressed by the stall
            # window that straddles the split, never by the split itself.
            assert first + decode(rest_keys) == whole

    def test_end_cycle_bounds_selection(self):
        merged = self.make_merged([[2, 4, 6, 8]])
        selected, _ = self.select(merged, 5, 1)
        assert [c for c, _ in selected] == [2, 4]

    def test_merge_candidates_orders_ties_by_row(self):
        merged = merge_candidates(
            [np.array([3, 7]), np.array([3, 5])], [10, 20], shift=6)
        mask = (1 << 6) - 1
        assert [key >> 6 for key in merged.keys_list] == [3, 3, 5, 7]
        assert [key & mask for key in merged.keys_list] == [10, 20, 20, 10]
        assert np.array_equal(merged.keys,
                              np.asarray(merged.keys_list, dtype=np.int64))
        assert (merged.shift, merged.mask) == (6, mask)

    def test_empty_input(self):
        merged = merge_candidates([], [], SHIFT)
        start = frontier_key(0, -1, SHIFT)
        keys, frontier = select_failures(merged, 100, 5, start)
        assert not list(keys)
        assert frontier == start


class TestKernelGate:
    def test_default_is_numpy(self):
        assert active_kernel() in KERNEL_NAMES

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            set_kernel("fortran")

    def test_numba_falls_back_without_wheel(self):
        try:
            import numba                                   # noqa: F401
            has_numba = True
        except ImportError:
            has_numba = False
        previous = active_kernel()
        try:
            if has_numba:
                set_kernel("numba")
                assert active_kernel() == "numba"
            else:
                with pytest.warns(RuntimeWarning, match="numba"):
                    set_kernel("numba")
                assert active_kernel() == "numpy"
        finally:
            set_kernel(previous)

    def test_numba_variant_matches_if_available(self):
        pytest.importorskip("numba")
        rng = np.random.default_rng(11)
        per_row = [np.flatnonzero(rng.random(500) < 0.3) for _ in range(4)]
        merged = merge_candidates(per_row, list(range(4)), SHIFT)
        start = frontier_key(0, -1, SHIFT)
        previous = set_kernel("numba")
        try:
            jit = select_failures(merged, 500, 4, start)
        finally:
            set_kernel(previous)
        ref = select_failures(merged, 500, 4, start)
        assert list(jit[0]) == list(ref[0])
        assert jit[1] == ref[1]


# ---------------------------------------------------------------------- #
# end-to-end equivalence properties
# ---------------------------------------------------------------------- #
def quadrangulate(compiled, **kwargs):
    """reference == scan == batched-no-kernel == batched-kernel, bit for bit."""
    return assert_oracle_chain(compiled,
                               variants=("scan", "batched", "kernel"),
                               **kwargs)


class TestKernelEngineEquivalence:
    """Randomized failure-dense triangulation across every engine path."""

    def synthetic(self, label, **overrides):
        return build_compiled_workload(synthetic_spec(label, **overrides))

    @pytest.mark.parametrize("controller", ["dvfs", "booster_safe", "booster"])
    @pytest.mark.parametrize("seed", [0, 5])
    def test_failure_dense_all_controllers(self, controller, seed):
        compiled = self.synthetic("kernel-dense")
        result = quadrangulate(
            compiled, cycles=600, controller=controller, beta=4,
            recompute_cycles=3, flip_mean=0.85, monitor_noise=0.02, seed=seed)
        if controller != "dvfs":
            assert result.total_failures > 100      # the stress must bite

    @pytest.mark.parametrize("recompute", [0, 1, 25])
    def test_recompute_extremes(self, recompute):
        """R=0 (all candidates fail), R=1 (densest windows) and a window
        longer than the beta period (group-wide overlapping stalls)."""
        compiled = self.synthetic("kernel-recompute")
        quadrangulate(compiled, cycles=500, controller="booster_safe", beta=6,
                      recompute_cycles=recompute, flip_mean=0.85,
                      monitor_noise=0.02, seed=2)
        quadrangulate(compiled, cycles=500, controller="booster", beta=6,
                      recompute_cycles=recompute, flip_mean=0.85,
                      monitor_noise=0.02, seed=2)

    def test_multi_macro_sets(self):
        """Four-macro Sets: within-cycle suppression spans several rows."""
        compiled = self.synthetic("kernel-multimacro", operator_rows=32,
                                  n_operators=6)
        for controller in ("booster_safe", "booster"):
            result = quadrangulate(
                compiled, cycles=700, controller=controller, beta=5,
                recompute_cycles=4, flip_mean=0.85, monitor_noise=0.02,
                seed=3)
            assert result.total_failures > 50

    def test_group_straddling_sets_mix_kernel_and_heap(self):
        """Two-macro Sets over 3-macro groups: straddling Sets force the heap
        scheduler while contained groups still take the kernels — both paths
        in one run, against the oracle."""
        compiled = self.synthetic("kernel-straddle", groups=6,
                                  macros_per_group=3, n_operators=9)
        result = quadrangulate(
            compiled, cycles=700, controller="booster", beta=4,
            recompute_cycles=10, flip_mean=0.8, monitor_noise=0.01, seed=7)
        assert result.total_failures > 50
        assert result.total_stall_cycles > 0

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_stress_grid(self, seed):
        """Random stress points: geometry and knobs drawn from the shared
        corpus distribution (coupling regime cycles with the seed)."""
        rng = np.random.default_rng(100 + seed)
        coupling = ("contained", "mixed", "straddling")[seed % 3]
        compiled = build_compiled_workload(random_workload_spec(
            f"kernel-rand-{seed}", rng, coupling=coupling))
        quadrangulate(compiled, **random_runtime_kwargs(rng))


class TestOracleChainCorpus:
    """The unified differential test: every engine variant — reference,
    scan, batched, kernel and the batched ensemble — over the one seeded
    scenario corpus (geometry x controller x mode x stress x coupling)."""

    @pytest.mark.parametrize("scenario", corpus_scenarios(),
                             ids=lambda s: s.label)
    def test_five_engine_variants_agree(self, scenario):
        assert_oracle_chain(scenario.compiled(), **scenario.kwargs)
