"""Tests for the model zoo and its registry."""

import numpy as np
import pytest

from repro.models import (
    LlamaTiny,
    RMSNorm,
    build_dataset,
    build_model,
    get_model_spec,
    gpt2,
    list_models,
    llama,
    mobilenet_v2,
    resnet18,
    vit,
    yolov5,
)
from repro.models.llama import apply_rope, rotary_embedding
from repro.nn import Conv2d, Linear
from repro.nn.tensor import Tensor

PAPER_WORKLOADS = {"resnet18", "mobilenetv2", "yolov5", "vit", "gpt2", "llama3"}


class TestRegistry:
    def test_all_paper_workloads_registered(self):
        assert PAPER_WORKLOADS.issubset(set(list_models()))

    def test_lookup_is_case_insensitive(self):
        assert get_model_spec("ResNet18").name == "resnet18"

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model_spec("alexnet")

    def test_families_and_tasks(self):
        assert get_model_spec("resnet18").family == "conv"
        assert get_model_spec("vit").family == "transformer"
        assert get_model_spec("yolov5").task == "detection"
        assert get_model_spec("llama3").task == "language_modeling"

    @pytest.mark.parametrize("name", sorted(PAPER_WORKLOADS))
    def test_build_and_forward(self, name):
        spec = get_model_spec(name)
        model = build_model(name)
        dataset = build_dataset(name)
        sample = dataset.inputs[:2]
        output = model(sample) if spec.task == "language_modeling" else model(Tensor(sample))
        assert output.shape[0] == 2
        assert np.all(np.isfinite(output.data))

    @pytest.mark.parametrize("name", sorted(PAPER_WORKLOADS))
    def test_every_model_has_pim_weight_layers(self, name):
        model = build_model(name)
        layers = model.weight_layers()
        assert len(layers) >= 3
        assert all(isinstance(layer, (Linear, Conv2d)) for _, layer in layers)


class TestConvModels:
    def test_resnet_output_shape_and_depth(self):
        model = resnet18(num_classes=7, base_width=4)
        out = model(Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 7)
        conv_layers = [n for n, l in model.weight_layers() if isinstance(l, Conv2d)]
        assert len(conv_layers) >= 17         # 8 blocks x 2 convs + stem + downsamples

    def test_resnet_layer_names_match_torchvision_convention(self):
        model = resnet18()
        names = [name for name, _ in model.weight_layers()]
        assert any(name.startswith("layer3.") and name.endswith("conv1") for name in names)

    def test_mobilenet_uses_depthwise_convs(self):
        model = mobilenet_v2(base_width=4)
        depthwise = [l for _, l in model.weight_layers()
                     if isinstance(l, Conv2d) and l.groups == l.in_channels and l.groups > 1]
        assert len(depthwise) >= 4
        assert model(Tensor(np.zeros((1, 3, 16, 16)))).shape == (1, 10)

    def test_yolo_head_outputs_box_plus_classes(self):
        model = yolov5(num_classes=5, base_width=4)
        out = model(Tensor(np.zeros((3, 3, 16, 16))))
        assert out.shape == (3, 4 + 5)


class TestTransformerModels:
    def test_vit_patch_count(self):
        model = vit(image_size=16, patch_size=4, dim=16, depth=1)
        assert model.patch_embed.num_patches == 16
        assert model(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 10)

    def test_vit_rejects_bad_patch_size(self):
        with pytest.raises(ValueError):
            vit(image_size=10, patch_size=3)

    def test_gpt2_sequence_length_guard(self):
        model = gpt2(vocab_size=16, dim=16, depth=1)
        with pytest.raises(ValueError):
            model(np.zeros((1, model.max_seq_len + 1), dtype=np.int64))

    def test_gpt2_handles_1d_input(self):
        model = gpt2(vocab_size=16, dim=16, depth=1)
        out = model(np.arange(8))
        assert out.shape == (1, 8, 16)

    def test_llama_forward_and_rmsnorm(self):
        model = llama(vocab_size=16, dim=16, depth=1)
        out = model(np.zeros((2, 6), dtype=np.int64))
        assert out.shape == (2, 6, 16)
        norm = RMSNorm(8)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 8)))
        normalized = norm(x)
        rms = np.sqrt((normalized.data ** 2).mean(axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_rope_preserves_norm(self):
        cos, sin = rotary_embedding(seq_len=5, head_dim=8)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 5, 8)))
        rotated = apply_rope(x, cos, sin)
        assert np.allclose(np.linalg.norm(rotated.data, axis=-1),
                           np.linalg.norm(x.data, axis=-1), atol=1e-9)

    def test_llama_causality(self):
        model = llama(vocab_size=16, dim=16, depth=1)
        tokens = np.arange(8, dtype=np.int64)[None, :] % 16
        base = model(tokens).data.copy()
        perturbed = tokens.copy()
        perturbed[0, -1] = (perturbed[0, -1] + 1) % 16
        out = model(perturbed).data
        assert np.allclose(out[0, :-1], base[0, :-1], atol=1e-9)
