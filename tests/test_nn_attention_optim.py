"""Tests for attention blocks and optimizers."""

import numpy as np
import pytest

from repro.nn import Adam, AdamW, SGD, Linear, Module, Parameter
from repro.nn.attention import (
    FeedForward,
    GatedFeedForward,
    MultiHeadAttention,
    TransformerBlock,
)
from repro.nn.tensor import Tensor


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadAttention(dim=16, num_heads=4, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 16)))
        assert attn(x).shape == (2, 5, 16)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(dim=10, num_heads=3)

    def test_causal_mask_blocks_future_tokens(self):
        """Changing a future token must not affect earlier outputs under causality."""
        rng = np.random.default_rng(2)
        attn = MultiHeadAttention(dim=8, num_heads=2, causal=True, rng=rng)
        x = rng.normal(size=(1, 6, 8))
        base = attn(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 5] += 10.0
        out = attn(Tensor(perturbed)).data
        assert np.allclose(out[0, :5], base[0, :5], atol=1e-9)
        assert not np.allclose(out[0, 5], base[0, 5])

    def test_non_causal_attends_everywhere(self):
        rng = np.random.default_rng(3)
        attn = MultiHeadAttention(dim=8, num_heads=2, causal=False, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        base = attn(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 3] += 5.0
        out = attn(Tensor(perturbed)).data
        assert not np.allclose(out[0, 0], base[0, 0])

    def test_operator_kind_tags_present(self):
        attn = MultiHeadAttention(dim=8, num_heads=2)
        assert attn.operator_kinds["qk_t"] == "qk_t"
        assert attn.operator_kinds["q_proj"] == "qkv"

    def test_transformer_block_gradients(self):
        block = TransformerBlock(dim=16, num_heads=4, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4, 16)), requires_grad=True)
        (block(x) ** 2).mean().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())

    def test_feedforward_shapes(self):
        ff = FeedForward(8, 32)
        gff = GatedFeedForward(8, 32)
        x = Tensor(np.zeros((2, 3, 8)))
        assert ff(x).shape == (2, 3, 8)
        assert gff(x).shape == (2, 3, 8)


class QuadraticProblem(Module):
    """f(w) = ||w - target||^2, minimized at w = target."""

    def __init__(self, target):
        super().__init__()
        self.w = Parameter(np.zeros_like(target))
        self.target = target

    def loss(self):
        diff = self.w - Tensor(self.target)
        return (diff * diff).sum()


class TestOptimizers:
    target = np.array([1.0, -2.0, 3.0])

    def _train(self, optimizer_cls, steps=200, **kwargs):
        problem = QuadraticProblem(self.target)
        optimizer = optimizer_cls(problem.parameters(), **kwargs)
        for _ in range(steps):
            loss = problem.loss()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return problem

    def test_sgd_converges(self):
        problem = self._train(SGD, lr=0.05)
        assert np.allclose(problem.w.data, self.target, atol=1e-2)

    def test_sgd_momentum_converges(self):
        problem = self._train(SGD, lr=0.02, momentum=0.9)
        assert np.allclose(problem.w.data, self.target, atol=1e-2)

    def test_adam_converges(self):
        problem = self._train(Adam, lr=0.1)
        assert np.allclose(problem.w.data, self.target, atol=1e-2)

    def test_adamw_decay_shrinks_weights(self):
        no_decay = self._train(AdamW, steps=50, lr=0.05, weight_decay=0.0)
        with_decay = self._train(AdamW, steps=50, lr=0.05, weight_decay=0.2)
        assert np.abs(with_decay.w.data).sum() < np.abs(no_decay.w.data).sum() + 1e-9

    def test_weight_decay_sgd(self):
        problem = QuadraticProblem(np.zeros(3))
        problem.w.data = np.ones(3)
        optimizer = SGD(problem.parameters(), lr=0.0, weight_decay=1.0)
        loss = problem.loss()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        assert np.allclose(problem.w.data, 1.0)   # lr 0 -> no change even with decay

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_step_skips_parameters_without_grad(self):
        layer = Linear(2, 2)
        optimizer = Adam(layer.parameters(), lr=0.1)
        optimizer.step()     # no gradients anywhere; must not raise
