"""Tests for the synthetic datasets and the training/evaluation loops."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Flatten,
    Linear,
    ReLU,
    Sequential,
    SyntheticDetection,
    SyntheticImageClassification,
    SyntheticLanguageModeling,
    evaluate_accuracy,
    evaluate_perplexity,
    recalibrate_batchnorm,
    train_classifier,
    train_language_model,
    train_regressor,
)
from repro.models import gpt2, resnet18


class TestDatasets:
    def test_classification_shapes_and_determinism(self):
        a = SyntheticImageClassification(num_samples=32, num_classes=5, image_size=8,
                                         channels=2, seed=7)
        b = SyntheticImageClassification(num_samples=32, num_classes=5, image_size=8,
                                         channels=2, seed=7)
        assert a.inputs.shape == (32, 2, 8, 8)
        assert a.targets.min() >= 0 and a.targets.max() < 5
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.targets, b.targets)

    def test_classification_different_seeds_differ(self):
        a = SyntheticImageClassification(num_samples=16, seed=1)
        b = SyntheticImageClassification(num_samples=16, seed=2)
        assert not np.array_equal(a.inputs, b.inputs)

    def test_detection_targets_normalized(self):
        ds = SyntheticDetection(num_samples=16, num_classes=3, image_size=16)
        assert ds.targets.shape == (16, 4 + 3)
        assert ds.targets[:, :4].min() >= 0.0 and ds.targets[:, :4].max() <= 1.0
        assert np.allclose(ds.targets[:, 4:].sum(axis=1), 1.0)

    def test_language_modeling_targets_are_shifted_inputs(self):
        ds = SyntheticLanguageModeling(num_samples=8, seq_len=12, vocab_size=16)
        assert ds.inputs.shape == (8, 12)
        assert np.array_equal(ds.inputs[:, 1:], ds.targets[:, :-1])

    def test_language_transition_matrix_rows_sum_to_one(self):
        ds = SyntheticLanguageModeling(num_samples=4, vocab_size=10)
        assert np.allclose(ds.transition.sum(axis=1), 1.0)

    def test_batches_cover_dataset(self):
        ds = SyntheticImageClassification(num_samples=20, image_size=8, channels=1)
        seen = sum(len(batch) for batch in ds.batches(8, shuffle=False))
        assert seen == 20

    def test_batches_shuffle_is_seeded(self):
        ds = SyntheticImageClassification(num_samples=20, image_size=8, channels=1)
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        first_a = next(iter(ds.batches(8, shuffle=True, rng=rng_a)))
        first_b = next(iter(ds.batches(8, shuffle=True, rng=rng_b)))
        assert np.array_equal(first_a.targets, first_b.targets)


class TestTrainingLoops:
    def test_classifier_reaches_high_accuracy(self):
        ds = SyntheticImageClassification(num_samples=96, num_classes=4, image_size=8,
                                          channels=1, seed=0)
        model = Sequential(Flatten(), Linear(64, 32), ReLU(), Linear(32, 4))
        report = train_classifier(model, ds, Adam(model.parameters(), lr=1e-2),
                                  epochs=4, batch_size=16)
        assert report.metrics[-1] > 80.0
        assert report.losses[-1] < report.losses[0]

    def test_regressor_loss_decreases(self):
        ds = SyntheticDetection(num_samples=48, num_classes=2, image_size=8)
        model = Sequential(Flatten(), Linear(3 * 64, 16), ReLU(), Linear(16, 6))
        report = train_regressor(model, ds, Adam(model.parameters(), lr=1e-2),
                                 epochs=4, batch_size=16)
        assert report.metrics[-1] < report.metrics[0]

    def test_language_model_beats_uniform_perplexity(self):
        ds = SyntheticLanguageModeling(num_samples=48, seq_len=16, vocab_size=24, seed=0)
        model = gpt2(vocab_size=24, dim=16, depth=1)
        report = train_language_model(model, ds, Adam(model.parameters(), lr=3e-3),
                                      epochs=4, batch_size=16)
        assert report.metrics[-1] < 24.0           # better than uniform
        assert report.metrics[-1] < report.metrics[0]

    def test_lhr_style_regularizer_is_added_to_loss(self):
        ds = SyntheticImageClassification(num_samples=32, num_classes=2, image_size=8,
                                          channels=1)
        model = Sequential(Flatten(), Linear(64, 2))
        calls = []

        def regularizer(m):
            calls.append(1)
            from repro.nn.tensor import Tensor
            return Tensor(0.0)

        train_classifier(model, ds, Adam(model.parameters(), lr=1e-3), epochs=1,
                         batch_size=16, regularizer=regularizer)
        assert len(calls) >= 2

    def test_recalibrate_batchnorm_updates_running_stats(self):
        spec_model = resnet18(num_classes=4, base_width=4)
        ds = SyntheticImageClassification(num_samples=32, num_classes=4, image_size=16,
                                          channels=3)
        before = spec_model.bn1.running_mean.copy()
        recalibrate_batchnorm(spec_model, ds, batch_size=16, max_batches=2)
        assert not np.allclose(before, spec_model.bn1.running_mean)

    def test_evaluate_accuracy_range(self):
        ds = SyntheticImageClassification(num_samples=32, num_classes=4, image_size=8,
                                          channels=1)
        model = Sequential(Flatten(), Linear(64, 4))
        acc = evaluate_accuracy(model, ds)
        assert 0.0 <= acc <= 100.0

    def test_evaluate_perplexity_positive(self):
        ds = SyntheticLanguageModeling(num_samples=8, seq_len=8, vocab_size=16)
        model = gpt2(vocab_size=16, dim=16, depth=1)
        assert evaluate_perplexity(model, ds) > 1.0
