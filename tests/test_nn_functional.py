"""Tests for conv/pool/embedding/loss functional ops."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import Conv2d
from repro.nn.tensor import Tensor


def naive_conv2d(x, w, stride=1, padding=0):
    """Direct convolution reference for cross-checking the im2col implementation."""
    n, c_in, h, width = x.shape
    c_out, _, k, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - k) // stride + 1
    out_w = (x.shape[3] - k) // stride + 1
    out = np.zeros((n, c_out, out_h, out_w))
    for b in range(n):
        for o in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[b, :, i * stride:i * stride + k, j * stride:j * stride + k]
                    out[b, o, i, j] = (patch * w[o]).sum()
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_naive_convolution(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding)
        assert np.allclose(out.data, naive_conv2d(x, w, stride, padding), atol=1e-10)

    def test_bias_added(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        w = Tensor(np.zeros((3, 2, 1, 1)))
        bias = Tensor(np.array([1.0, 2.0, 3.0]))
        out = F.conv2d(x, w, bias)
        assert np.allclose(out.data[0, 0], 1.0)
        assert np.allclose(out.data[0, 2], 3.0)

    def test_grouped_conv_matches_split(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 4, 5, 5))
        w = rng.normal(size=(4, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=1, groups=2)
        ref_a = naive_conv2d(x[:, :2], w[:2], 1, 1)
        ref_b = naive_conv2d(x[:, 2:], w[2:], 1, 1)
        assert np.allclose(out.data, np.concatenate([ref_a, ref_b], axis=1), atol=1e-10)

    def test_depthwise_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        conv = Conv2d(3, 3, 3, padding=1, groups=3, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 5, 5)))
        (conv(x) ** 2).sum().backward()
        index = (1, 0, 2, 1)
        eps = 1e-6
        w = conv.weight
        original = w.data[index]
        w.data[index] = original + eps
        hi = float((conv(x) ** 2).sum().data)
        w.data[index] = original - eps
        lo = float((conv(x) ** 2).sum().data)
        w.data[index] = original
        assert w.grad[index] == pytest.approx((hi - lo) / (2 * eps), rel=1e-4)

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((4, 1, 3, 3))), groups=2)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2)
        assert np.allclose(out.data.reshape(-1), [5, 7, 13, 15])

    def test_max_pool_gradient_goes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        grad = x.grad.reshape(4, 4)
        assert grad.sum() == 4
        assert grad[1, 1] == 1 and grad[3, 3] == 1

    def test_avg_pool_values_and_grad(self):
        x = Tensor(np.ones((1, 2, 4, 4)), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        assert np.allclose(out.data, 1.0)
        out.sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_global_avg_pool(self):
        x = Tensor(np.arange(8.0).reshape(1, 2, 2, 2))
        out = F.global_avg_pool2d(x)
        assert out.shape == (1, 2)
        assert np.allclose(out.data, [[1.5, 5.5]])


class TestEmbeddingAndLosses:
    def test_embedding_lookup_and_grad(self):
        table = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        idx = np.array([[0, 2], [2, 3]])
        out = F.embedding(idx, table)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        # Row 2 used twice, rows 0 and 3 once, row 1 never.
        assert np.allclose(table.grad[:, 0], [1, 0, 2, 1])

    def test_log_softmax_normalization(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        logp = F.log_softmax(x)
        assert np.allclose(np.exp(logp.data).sum(axis=-1), 1.0)

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((5, 10)), requires_grad=True)
        loss = F.cross_entropy(logits, np.zeros(5, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(10))
        loss.backward()
        assert logits.grad.shape == (5, 10)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((3, 4), -100.0)
        logits[np.arange(3), [1, 2, 3]] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2, 3]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_3d_logits(self):
        logits = Tensor(np.zeros((2, 3, 5)), requires_grad=True)
        loss = F.cross_entropy(logits, np.zeros((2, 3), dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(5))

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        assert np.allclose(pred.grad, [1.0, 2.0])


class TestIm2Col:
    def test_roundtrip_counts_overlaps(self):
        """col2im(im2col(x)) equals x scaled by each pixel's window coverage count."""
        x = np.random.default_rng(0).normal(size=(2, 3, 5, 5))
        cols = F.im2col(x, kernel=3, stride=1, padding=1)
        back = F.col2im(cols, x.shape, kernel=3, stride=1, padding=1)
        coverage = F.col2im(F.im2col(np.ones_like(x), 3, 1, 1), x.shape, 3, 1, 1)
        assert back.shape == x.shape
        assert np.allclose(back, x * coverage)

    def test_im2col_shape(self):
        x = np.zeros((2, 3, 8, 8))
        cols = F.im2col(x, kernel=2, stride=2, padding=0)
        assert cols.shape == (2, 16, 12)
