"""Tests for Module mechanics and the concrete layers."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    SiLU,
)
from repro.nn.tensor import Tensor


class TestModuleMechanics:
    def test_parameter_registration_and_names(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names and "layer2.bias" in names
        assert len(list(model.parameters())) == 4

    def test_weight_layers_lists_linear_and_conv(self):
        rng = np.random.default_rng(0)
        model = Sequential(Conv2d(1, 2, 3, rng=rng), ReLU(), Linear(8, 4, rng=rng))
        kinds = [type(layer).__name__ for _, layer in model.weight_layers()]
        assert kinds == ["Conv2d", "Linear"]

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        a = Sequential(Linear(4, 4, rng=rng))
        b = Sequential(Linear(4, 4, rng=np.random.default_rng(99)))
        b.load_state_dict(a.state_dict())
        assert np.allclose(a[0].weight.data, b[0].weight.data)

    def test_state_dict_rejects_unknown_or_mismatched(self):
        model = Sequential(Linear(4, 4))
        with pytest.raises(KeyError):
            model.load_state_dict({"nope": np.zeros((4, 4))})
        with pytest.raises(ValueError):
            model.load_state_dict({"layer0.weight": np.zeros((2, 2))})

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Sequential(Dropout(0.5)))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        layer = Linear(3, 3)
        (layer(Tensor(np.ones((2, 3)))) ** 2).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLinearAndConv:
    def test_linear_forward_matches_matmul(self):
        rng = np.random.default_rng(0)
        layer = Linear(5, 3, rng=rng)
        x = rng.normal(size=(4, 5))
        out = layer(Tensor(x))
        assert np.allclose(out.data, x @ layer.weight.data.T + layer.bias.data)

    def test_linear_without_bias(self):
        layer = Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_conv_output_shape(self):
        layer = Conv2d(3, 8, 3, stride=2, padding=1)
        out = layer(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_laplace_init_is_zero_centred_and_heavy_tailed(self):
        rng = np.random.default_rng(0)
        layer = Linear(256, 256, rng=rng)
        w = layer.weight.data
        assert abs(w.mean()) < 0.01
        # Laplace kurtosis (~3 excess) distinguishes it from uniform (-1.2).
        centred = w - w.mean()
        kurtosis = (centred ** 4).mean() / (centred ** 2).mean() ** 2 - 3
        assert kurtosis > 1.0


class TestNormalization:
    def test_batchnorm_normalizes_in_training(self):
        bn = BatchNorm2d(3)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(8, 3, 4, 4)))
        out = bn(x)
        assert abs(out.data.mean()) < 1e-6
        assert out.data.std() == pytest.approx(1.0, abs=0.05)

    def test_batchnorm_running_stats_track_batches(self):
        bn = BatchNorm2d(2)
        x = np.random.default_rng(0).normal(5.0, 1.0, size=(16, 2, 4, 4))
        for _ in range(5):
            bn(Tensor(x))
        assert np.allclose(bn.running_mean, 5.0, atol=0.2)
        bn.eval()
        out = bn(Tensor(x))
        assert abs(out.data.mean()) < 0.2

    def test_batchnorm_gradients_flow(self):
        bn = BatchNorm2d(2)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 2, 3, 3)), requires_grad=True)
        (bn(x) ** 2).sum().backward()
        assert x.grad is not None
        assert bn.weight.grad is not None

    def test_layernorm_normalizes_last_dim(self):
        ln = LayerNorm(16)
        x = Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(4, 8, 16)))
        out = ln(x)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)


class TestOtherLayers:
    def test_embedding_shape(self):
        emb = Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_dropout_eval_is_identity(self):
        drop = Dropout(0.9)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.allclose(drop(x).data, 1.0)

    def test_dropout_train_scales_survivors(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones((100, 100))))
        values = np.unique(np.round(out.data, 6))
        assert set(values).issubset({0.0, 2.0})

    def test_activations_and_flatten(self):
        x = Tensor(np.array([[-1.0, 2.0]]))
        assert np.allclose(ReLU()(x).data, [[0.0, 2.0]])
        assert np.allclose(Identity()(x).data, x.data)
        assert SiLU()(x).data[0, 1] == pytest.approx(2.0 / (1 + np.exp(-2.0)) * 1, rel=1e-6)
        assert GELU()(x).data[0, 0] < 0.0
        assert Flatten()(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)

    def test_maxpool_module(self):
        pool = MaxPool2d(2)
        out = pool(Tensor(np.arange(16.0).reshape(1, 1, 4, 4)))
        assert out.shape == (1, 1, 2, 2)

    def test_sequential_indexing(self):
        seq = Sequential(ReLU(), GELU(), SiLU())
        assert len(seq) == 3
        assert isinstance(seq[1], GELU)
        assert [type(m).__name__ for m in seq] == ["ReLU", "GELU", "SiLU"]
