"""Tests for the autograd tensor engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, concatenate, ones, randn, stack, tensor, where, zeros


def numeric_gradient(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar function of a numpy array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = fn(x)
        flat[i] = original - eps
        lo = fn(x)
        flat[i] = original
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


class TestBasics:
    def test_constructors(self):
        assert zeros((2, 3)).shape == (2, 3)
        assert ones((4,)).data.sum() == 4
        assert tensor([1.0, 2.0]).size == 2
        assert randn((3, 3), np.random.default_rng(0)).shape == (3, 3)

    def test_detach_and_item(self):
        t = tensor([[3.5]], requires_grad=True)
        assert t.item() == 3.5
        assert not t.detach().requires_grad

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            tensor([1.0]).backward()


class TestArithmeticGradients:
    def test_add_mul_chain(self):
        a = tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = tensor([4.0, 5.0, 6.0], requires_grad=True)
        loss = ((a * b + a) * 2.0).sum()
        loss.backward()
        assert np.allclose(a.grad, 2.0 * (np.array([4, 5, 6]) + 1))
        assert np.allclose(b.grad, 2.0 * np.array([1, 2, 3]))

    def test_broadcast_add_reduces_grad(self):
        a = tensor(np.ones((4, 3)), requires_grad=True)
        b = tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, 4.0)

    def test_div_pow_neg(self):
        a = tensor([2.0, 4.0], requires_grad=True)
        loss = ((1.0 / a) + (-a) ** 2).sum()
        loss.backward()
        expected = -1.0 / np.array([2.0, 4.0]) ** 2 + 2 * np.array([2.0, 4.0])
        assert np.allclose(a.grad, expected)

    def test_matmul_2d(self):
        rng = np.random.default_rng(0)
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 2))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 2)) @ b_val.T)
        assert np.allclose(b.grad, a_val.T @ np.ones((3, 2)))

    def test_matmul_batched(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        out = a.matmul(b)
        assert out.shape == (2, 3, 5)
        (out * out).sum().backward()
        assert a.grad.shape == (2, 3, 4) and b.grad.shape == (2, 4, 5)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_elementwise_ops_match_numeric_gradient(self, seed):
        rng = np.random.default_rng(seed)
        x_val = rng.uniform(0.2, 2.0, size=(3, 3))

        def loss_fn(arr):
            t = Tensor(arr)
            return float((t.exp() + t.log() + t.tanh() + t.sigmoid()).sum().data)

        x = Tensor(x_val.copy(), requires_grad=True)
        (x.exp() + x.log() + x.tanh() + x.sigmoid()).sum().backward()
        numeric = numeric_gradient(loss_fn, x_val.copy())
        assert np.allclose(x.grad, numeric, atol=1e-4)


class TestShapingOps:
    def test_reshape_transpose_roundtrip(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        y = x.reshape(4, 3).transpose()
        (y * y).sum().backward()
        assert x.grad.shape == (3, 4)
        assert np.allclose(x.grad, 2 * x.data)

    def test_getitem_gradient(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1
        assert np.allclose(x.grad, expected)

    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        x.sum(axis=(1, 2)).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean_gradient(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 1.0 / 20)

    def test_concatenate_and_stack(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(2 * np.ones((2, 2)), requires_grad=True)
        cat = concatenate([a, b], axis=0)
        assert cat.shape == (4, 2)
        stk = stack([a, b], axis=0)
        assert stk.shape == (2, 2, 2)
        (cat.sum() + stk.sum()).backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_where_gradient_routing(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1, 0, 1])
        assert np.allclose(b.grad, [0, 1, 0])


class TestNonlinearities:
    def test_relu_masks_gradient(self):
        x = Tensor(np.array([-1.0, 2.0, -3.0, 4.0]), requires_grad=True)
        x.relu().sum().backward()
        assert np.allclose(x.grad, [0, 1, 0, 1])

    def test_clip_gradient(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0, 1, 0])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 7)), requires_grad=True)
        s = x.softmax(axis=-1)
        assert np.allclose(s.data.sum(axis=-1), 1.0)
        # Gradient of the sum of a softmax is ~0 (it is constant at 1 per row).
        s.sum().backward()
        assert np.allclose(x.grad, 0.0, atol=1e-9)

    def test_gelu_matches_numeric(self):
        x_val = np.linspace(-2, 2, 9)
        x = Tensor(x_val.copy(), requires_grad=True)
        x.gelu().sum().backward()
        numeric = numeric_gradient(lambda arr: float(Tensor(arr).gelu().sum().data),
                                   x_val.copy())
        assert np.allclose(x.grad, numeric, atol=1e-5)

    def test_round_ste_passes_gradient(self):
        x = Tensor(np.array([0.4, 1.6]), requires_grad=True)
        y = x.round_ste()
        assert np.allclose(y.data, [0.0, 2.0])
        y.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_abs_gradient(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        x.abs().sum().backward()
        assert np.allclose(x.grad, [-1.0, 1.0])


class TestGraphBehaviour:
    def test_gradient_accumulates_over_reuse(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x * 2.0 + x * 3.0
        y.backward()
        assert np.allclose(x.grad, 5.0)

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a * b).backward()
        # d/dx (12 x^2) = 24 x = 48
        assert np.allclose(x.grad, 48.0)

    def test_deep_chain_does_not_recurse(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(500):
            y = y * 1.001
        y.backward()
        assert x.grad is not None
