"""Tests for the PIM hardware substrate: bit-serial, banks, macros, chip, dataflow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wds import shift_weights
from repro.pim import (
    AdderTree,
    BankConfig,
    ChipConfig,
    GroupConfig,
    MacroConfig,
    Operator,
    PIMBank,
    PIMChip,
    PIMMacro,
    ShiftCompensator,
    Task,
    bit_serial_matmul,
    bit_serial_stream,
    build_tasks,
    default_chip_config,
    from_bit_planes,
    layer_weight_matrix,
    small_chip_config,
    stream_toggle_counts,
    tile_matrix,
    to_bit_planes,
)


class TestBitSerial:
    @given(st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_bit_plane_roundtrip(self, values):
        codes = np.array(values)
        planes = to_bit_planes(codes, 8)
        assert np.array_equal(from_bit_planes(planes, signed=True), codes)

    def test_bit_serial_stream_layout(self):
        acts = np.array([[1, 2], [3, 0]])
        stream = bit_serial_stream(acts, bits=4)
        assert stream.shape == (8, 2)
        # First wave, LSB first: 1 -> [1,0,0,0] down the cycles of column 0.
        assert list(stream[:4, 0]) == [1, 0, 0, 0]
        assert list(stream[:4, 1]) == [0, 1, 0, 0]

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_bit_serial_matmul_matches_integer_matmul(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(-128, 128, size=10)
        acts = rng.integers(-8, 8, size=(5, 10))
        assert np.array_equal(bit_serial_matmul(weights, acts, input_bits=4), acts @ weights)

    def test_toggle_counts(self):
        stream = np.array([[0, 0], [1, 0], [1, 1]], dtype=np.uint8)
        assert list(stream_toggle_counts(stream)) == [1, 1]

    def test_out_of_range_activation_rejected(self):
        with pytest.raises(ValueError):
            bit_serial_stream(np.array([[300]]), bits=8)


class TestBankAndMacro:
    def make_macro(self):
        return PIMMacro(MacroConfig(banks=3, bank=BankConfig(rows=6, weight_bits=8,
                                                             input_bits=4)))

    def test_bank_load_and_capacity(self):
        bank = PIMBank(BankConfig(rows=4))
        bank.load_weights(np.array([1, -2, 3]))
        assert bank.loaded_rows == 3
        with pytest.raises(ValueError):
            bank.load_weights(np.arange(5))
        with pytest.raises(ValueError):
            bank.load_weights(np.array([999]))

    def test_bank_execute_matches_matmul_and_bounds_rtog(self):
        rng = np.random.default_rng(0)
        bank = PIMBank(BankConfig(rows=8, input_bits=4))
        weights = rng.integers(-100, 100, size=8)
        bank.load_weights(weights)
        acts = rng.integers(-7, 8, size=(6, 8))
        execution = bank.execute(acts)
        assert np.array_equal(execution.partial_sums, acts @ weights)
        assert execution.peak_rtog <= bank.hamming_rate + 1e-12
        assert execution.cycles == 6 * 4

    def test_macro_functional_and_hr(self):
        rng = np.random.default_rng(1)
        macro = self.make_macro()
        tile = rng.integers(-100, 100, size=(6, 3))
        macro.load_weight_matrix(tile)
        acts = rng.integers(-7, 8, size=(4, 6))
        execution = macro.execute(acts)
        assert np.allclose(execution.outputs, acts @ tile)
        assert execution.peak_rtog <= macro.hamming_rate + 1e-12
        assert macro.bank_hamming_rates.shape == (3,)

    def test_macro_wds_compensation_is_exact_without_clamp(self):
        rng = np.random.default_rng(2)
        macro = self.make_macro()
        tile = rng.integers(-100, 100, size=(6, 3))
        macro.load_weight_matrix(tile, wds_delta=16)
        acts = rng.integers(-7, 8, size=(5, 6))
        execution = macro.execute(acts)
        assert np.allclose(execution.outputs, acts @ tile)
        # The stored codes really are the shifted ones.
        assert np.array_equal(macro.weight_matrix[:6, :], shift_weights(tile, 16, 8))

    def test_macro_wds_lowers_hr_for_bell_shaped_weights(self):
        rng = np.random.default_rng(3)
        tile = np.clip(np.round(rng.laplace(0, 15, size=(6, 3))), -128, 127).astype(int)
        plain = self.make_macro()
        plain.load_weight_matrix(tile)
        shifted = self.make_macro()
        shifted.load_weight_matrix(tile, wds_delta=8)
        assert shifted.hamming_rate < plain.hamming_rate

    def test_macro_rejects_oversized_tile_and_unloaded_execute(self):
        macro = self.make_macro()
        with pytest.raises(ValueError):
            macro.load_weight_matrix(np.zeros((10, 2), dtype=int))
        with pytest.raises(RuntimeError):
            macro.execute(np.zeros((1, 6), dtype=int))

    def test_apim_mode_quantizes_outputs(self):
        config = MacroConfig(banks=2, bank=BankConfig(rows=6, input_bits=4),
                             is_analog=True, adc_bits=4)
        rng = np.random.default_rng(4)
        macro = PIMMacro(config)
        tile = rng.integers(-100, 100, size=(6, 2))
        macro.load_weight_matrix(tile)
        acts = rng.integers(-7, 8, size=(3, 6))
        execution = macro.execute(acts)
        exact = acts @ tile
        # ADC quantization introduces bounded error but keeps the trend.
        assert not np.allclose(execution.outputs, exact)
        full_scale = 6 * 128
        step = 2 * full_scale / (1 << 4)
        in_range = np.abs(exact) <= full_scale
        assert np.all(np.abs(execution.outputs - exact)[in_range] <= step)
        # Accumulations beyond the ADC full scale saturate at the rails.
        assert np.all(np.abs(execution.outputs[~in_range]) == full_scale)

    def test_macro_clear(self):
        macro = self.make_macro()
        macro.load_weight_matrix(np.ones((6, 3), dtype=int), wds_delta=8)
        macro.clear()
        assert not macro.is_loaded
        assert macro.hamming_rate == 0.0


class TestAdderTreeAndCompensator:
    def test_adder_tree_reduce_and_activity(self):
        tree = AdderTree(leaves=8, operand_bits=4)
        products = np.array([1, 0, 2, 0, 3, 0, 4, 0])
        assert tree.reduce(products) == 10
        activity = tree.activity(products)
        assert activity.depth == 3
        assert activity.total_activity > 0
        assert tree.adder_count == 7
        assert tree.equivalent_capacitance() > 0

    def test_adder_tree_validation(self):
        with pytest.raises(ValueError):
            AdderTree(leaves=0)
        with pytest.raises(ValueError):
            AdderTree(leaves=4).reduce(np.arange(5))

    def test_shift_compensator_correction(self):
        sc = ShiftCompensator(delta=8, banks=4)
        sums = np.array([100.0, 200.0, 300.0, 400.0])
        inputs = np.array([1, 2, 3])
        corrected = sc.correct(sums, inputs)
        assert np.allclose(corrected, sums - 8 * 6)
        assert sc.shift_amount == 3
        assert sc.pipeline_latency_cycles == 1

    def test_shift_compensator_zero_delta_is_identity(self):
        sc = ShiftCompensator(delta=0, banks=4)
        sums = np.array([1.0, 2.0])
        assert np.allclose(sc.correct(sums, np.array([5, 5])), sums)

    def test_shift_compensator_requires_power_of_two(self):
        with pytest.raises(ValueError):
            ShiftCompensator(delta=6, banks=4)

    def test_overhead_within_paper_bounds(self):
        sc = ShiftCompensator(delta=8, banks=4)
        assert sc.overhead.area_fraction < 0.002
        assert sc.overhead.power_fraction < 0.01


class TestChipAndConfig:
    def test_default_config_matches_paper_hierarchy(self):
        config = default_chip_config()
        assert config.groups == 16 and config.group.macros == 4
        assert config.total_macros == 64
        assert config.nominal_voltage == pytest.approx(0.75)
        assert config.signoff_ir_drop == pytest.approx(0.140)
        config.validate()

    def test_macro_index_location_roundtrip(self):
        config = small_chip_config(groups=3, macros_per_group=4)
        for index in range(config.total_macros):
            group, pos = config.macro_location(index)
            assert config.macro_index(group, pos) == index
        with pytest.raises(IndexError):
            config.macro_location(config.total_macros)
        with pytest.raises(IndexError):
            config.macro_index(99, 0)

    def test_config_validation_errors(self):
        with pytest.raises(ValueError):
            ChipConfig(groups=0).validate()
        with pytest.raises(ValueError):
            ChipConfig(signoff_ir_drop=1.0).validate()
        with pytest.raises(ValueError):
            BankConfig(rows=0).validate()

    def test_chip_navigation_and_hr(self):
        chip = PIMChip(small_chip_config(groups=2, macros_per_group=2, banks=2, rows=4))
        chip.macro(3).load_weight_matrix(np.full((4, 2), -1, dtype=int))
        assert chip.loaded_macro_indices() == [3]
        assert chip.macro_hamming_rates()[3] == pytest.approx(1.0)
        assert chip.group_hamming_rates()[1] == pytest.approx(1.0)
        assert chip.group_of(3).group_id == 1
        rows, cols = chip.grid_shape
        assert rows * cols >= chip.config.total_macros
        chip.clear()
        assert chip.loaded_macro_indices() == []

    def test_peak_tops_positive(self):
        assert default_chip_config().peak_tops > 50.0


class TestDataflow:
    def test_layer_weight_matrix_shapes(self):
        linear = np.zeros((10, 6))
        conv = np.zeros((8, 3, 3, 3))
        assert layer_weight_matrix(linear).shape == (6, 10)
        assert layer_weight_matrix(conv).shape == (27, 8)
        with pytest.raises(ValueError):
            layer_weight_matrix(np.zeros((2, 2, 2)))

    def test_tile_matrix_covers_everything(self):
        matrix = np.arange(7 * 5).reshape(7, 5)
        tiles = tile_matrix(matrix, rows=3, cols=2)
        assert sum(t.size for t in tiles) == matrix.size
        assert tiles[0].shape == (3, 2)
        assert tiles[-1].shape == (1, 1)

    def test_build_tasks_assigns_sets_and_ids(self):
        macro = MacroConfig(banks=2, bank=BankConfig(rows=4))
        ops = [
            Operator(name="a", kind="conv", codes=np.zeros((8, 4), dtype=int)),
            Operator(name="b", kind="qk_t", codes=np.zeros((4, 2), dtype=int)),
        ]
        tasks = build_tasks(ops, macro)
        assert len(tasks) == 4 + 1
        assert {t.set_id for t in tasks} == {0, 1}
        assert [t.task_id for t in tasks] == list(range(5))
        assert tasks[-1].input_determined

    def test_build_tasks_respects_cap(self):
        macro = MacroConfig(banks=2, bank=BankConfig(rows=4))
        op = Operator(name="big", kind="linear", codes=np.zeros((16, 8), dtype=int))
        tasks = build_tasks([op], macro, max_tasks_per_operator=3)
        assert len(tasks) == 3

    def test_operator_validation(self):
        with pytest.raises(ValueError):
            Operator(name="bad", kind="pooling", codes=np.zeros((2, 2), dtype=int))
        with pytest.raises(ValueError):
            Operator(name="bad", kind="conv", codes=np.zeros(4, dtype=int))

    def test_task_hr_accounts_for_wds(self):
        rng = np.random.default_rng(0)
        codes = np.clip(np.round(rng.laplace(0, 15, size=(8, 4))), -128, 127).astype(int)
        plain = Task(task_id=0, operator_name="op", kind="conv", set_id=0, codes=codes, bits=8)
        shifted = Task(task_id=1, operator_name="op", kind="conv", set_id=0, codes=codes,
                       bits=8, wds_delta=8)
        assert shifted.hamming_rate < plain.hamming_rate
