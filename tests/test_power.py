"""Tests for the power substrate: V-f tables, PDN, IR-drop, monitors, DVFS, energy."""

import numpy as np
import pytest

from repro.power import (
    DVFSGovernor,
    EnergyBreakdown,
    EnergyModel,
    IRDropModel,
    IRMonitor,
    OverheadReport,
    PowerDeliveryNetwork,
    VFTable,
    chip_ir_drop_map,
)


@pytest.fixture
def table():
    return VFTable()


class TestVFTable:
    def test_levels_contain_paper_range(self, table):
        assert set(range(20, 61, 5)).issubset(set(table.levels))
        assert 100 in table.levels
        assert table.booster_levels() == list(range(20, 61, 5))

    def test_nominal_dvfs_pair_matches_paper_operating_point(self, table):
        pair = table.nominal_dvfs_pair()
        assert pair.voltage == pytest.approx(0.75, abs=0.01)
        assert pair.frequency == pytest.approx(1.0e9)

    def test_lower_level_needs_lower_voltage_at_same_frequency(self, table):
        """The IR-Booster degree of freedom in Fig. 9."""
        f = table.nominal_frequency
        v_by_level = [table.minimum_voltage(level, f) for level in table.booster_levels()]
        assert all(a <= b + 1e-12 for a, b in zip(v_by_level, v_by_level[1:]))
        assert table.minimum_voltage(100, f) > table.minimum_voltage(40, f)

    def test_higher_frequency_needs_higher_voltage(self, table):
        assert table.minimum_voltage(40, 1.2e9) > table.minimum_voltage(40, 0.8e9)

    def test_nearest_level_rounds_up(self, table):
        assert table.nearest_level_at_or_above(0.475) == 50
        assert table.nearest_level_at_or_above(0.40) == 40
        assert table.nearest_level_at_or_above(0.62) == 100

    def test_level_navigation_clamps(self, table):
        assert table.level_below(20) == 20
        assert table.level_above(60) == 60
        assert table.level_below(40) == 35
        assert table.level_above(40) == 45

    def test_mode_selection(self, table):
        sprint = table.select_pair(40, "sprint")
        low_power = table.select_pair(40, "low_power")
        assert sprint.frequency >= low_power.frequency
        assert low_power.dynamic_power_factor <= sprint.dynamic_power_factor
        with pytest.raises(ValueError):
            table.select_pair(40, "turbo")
        with pytest.raises(KeyError):
            table.pairs_for_level(33)

    def test_grid_has_all_levels(self, table):
        grid = table.as_grid()
        assert set(grid) == set(table.levels)
        assert all(len(pairs) == len(table.frequencies) for pairs in grid.values())


class TestPDN:
    def test_no_current_no_drop(self):
        pdn = PowerDeliveryNetwork(6, 6, supply_voltage=0.75)
        result = pdn.solve(np.zeros((6, 6)))
        assert np.allclose(result.ir_drop, 0.0, atol=1e-9)

    def test_drop_grows_with_current_and_centre_is_worst(self):
        pdn = PowerDeliveryNetwork(7, 7)
        centre = np.zeros((7, 7))
        centre[3, 3] = 0.1
        light = pdn.solve(centre)
        heavy = pdn.solve(centre * 3)
        assert heavy.worst_drop > light.worst_drop
        assert light.ir_drop[3, 3] == pytest.approx(light.worst_drop)
        assert light.ir_drop[0, 0] < light.ir_drop[3, 3]

    def test_bump_current_balances_demand(self):
        pdn = PowerDeliveryNetwork(5, 5)
        demand = np.full((5, 5), 0.01)
        result = pdn.solve(demand)
        assert result.bump_current.sum() == pytest.approx(demand.sum(), rel=1e-6)

    def test_macro_placement_and_validation(self):
        pdn = PowerDeliveryNetwork(4, 4)
        result = pdn.solve_for_macros([0.05, 0.05], [(1, 1), (2, 2)])
        assert result.total_current == pytest.approx(0.1)
        with pytest.raises(IndexError):
            pdn.solve_for_macros([0.1], [(9, 9)])
        with pytest.raises(ValueError):
            pdn.solve(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            pdn.solve(-np.ones((4, 4)))


class TestIRDropModel:
    def test_signoff_calibration(self):
        model = IRDropModel()
        assert model.drop(1.0) == pytest.approx(0.140)
        assert model.drop(0.0) == pytest.approx(model.static_drop)

    def test_monotone_in_rtog_voltage_frequency(self):
        model = IRDropModel()
        assert model.drop(0.6) > model.drop(0.3)
        assert model.drop(0.5, voltage=0.65) < model.drop(0.5, voltage=0.75)
        assert model.drop(0.5, frequency=0.7e9) < model.drop(0.5, frequency=1.0e9)

    def test_drop_array_matches_scalar(self):
        model = IRDropModel()
        rtogs = np.array([0.1, 0.5, 0.9])
        assert np.allclose(model.drop_array(rtogs), [model.drop(r) for r in rtogs])

    def test_invalid_inputs(self):
        model = IRDropModel()
        with pytest.raises(ValueError):
            model.drop(1.5)
        with pytest.raises(ValueError):
            IRDropModel(static_fraction=1.5)
        with pytest.raises(ValueError):
            IRDropModel(signoff_drop=0.9, supply_voltage=0.75)

    def test_mitigation_and_effective_voltage(self):
        model = IRDropModel()
        assert model.effective_voltage(0.5) == pytest.approx(0.75 - model.drop(0.5))
        assert model.mitigation(0.9, 0.3) > 0.0

    def test_chip_map_places_hotspots_at_active_macros(self):
        model = IRDropModel()
        pdn = PowerDeliveryNetwork(6, 6)
        rtog = [0.9, 0.1]
        positions = [(2, 2), (4, 4)]
        result = chip_ir_drop_map(model, pdn, rtog, positions)
        assert result.ir_drop[2, 2] > result.ir_drop[4, 4]


class TestMonitorDVFSEnergy:
    def test_monitor_thresholding(self):
        monitor = IRMonitor(sensing_noise=0.0)
        assert not monitor.sample(0, effective_voltage=0.70, threshold_voltage=0.65)
        assert monitor.sample(1, effective_voltage=0.60, threshold_voltage=0.65)
        assert monitor.failure_count == 1
        assert monitor.failure_rate == pytest.approx(0.5)
        assert monitor.readings[1].margin < 0
        monitor.reset()
        assert monitor.failure_count == 0

    def test_monitor_noise_creates_marginal_failures(self):
        monitor = IRMonitor(sensing_noise=0.01, seed=0)
        failures = sum(monitor.sample(i, 0.651, 0.65) for i in range(500))
        assert 0 < failures < 500

    def test_monitor_overheads_within_paper_bounds(self):
        monitor = IRMonitor()
        assert monitor.overhead_area_fraction <= 0.001
        assert monitor.overhead_power_fraction <= 0.005

    def test_dvfs_governor_only_uses_signoff_level(self, table):
        governor = DVFSGovernor(table, mode="sprint")
        assert governor.level == 100
        assert governor.select().level == 100
        assert governor.select(utilization=0.9).frequency >= governor.select(utilization=0.1).frequency

    def test_energy_model_calibration(self):
        model = EnergyModel()
        nominal = model.macro_power_mw(0.75, 1.0e9, activity=1.0)
        assert nominal == pytest.approx(4.2978, rel=1e-3)
        assert model.macro_power(0.65, 1.0e9, 0.5) < model.macro_power(0.75, 1.0e9, 0.5)
        assert model.macro_power(0.75, 1.0e9, 0.2) < model.macro_power(0.75, 1.0e9, 0.8)
        with pytest.raises(ValueError):
            model.dynamic_power(0.75, 1e9, -0.1)

    def test_energy_accumulation_and_breakdown(self):
        model = EnergyModel()
        breakdown = EnergyBreakdown()
        for _ in range(100):
            model.accumulate_cycle(breakdown, 0.75, 1.0e9, activity=0.5,
                                   macs_completed=64)
        assert breakdown.completed_macs == 6400
        assert breakdown.elapsed_time == pytest.approx(100e-9)
        assert breakdown.average_power_mw > 0
        assert breakdown.effective_tops > 0
        stalled = EnergyBreakdown()
        model.accumulate_cycle(stalled, 0.75, 1.0e9, 0.5, 64, stalled=True)
        assert stalled.completed_macs == 0
        assert stalled.dynamic_energy < breakdown.dynamic_energy / 100

    def test_breakdown_merge_and_overhead_report(self):
        a = EnergyBreakdown(dynamic_energy=1.0, static_energy=0.5, elapsed_time=1.0,
                            completed_macs=10)
        b = EnergyBreakdown(dynamic_energy=2.0, static_energy=0.5, elapsed_time=2.0,
                            completed_macs=20)
        merged = a.merge(b)
        assert merged.total_energy == pytest.approx(4.0)
        assert merged.elapsed_time == 2.0
        report = OverheadReport()
        assert report.total_area_fraction < 0.005
        assert report.total_power_fraction < 0.02
