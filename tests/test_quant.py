"""Tests for the quantization stack: quantizer, observers, QAT, PTQ, pruning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import hamming_rate
from repro.models import get_model_spec
from repro.nn import Flatten, Linear, ReLU, Sequential
from repro.quant import (
    MinMaxObserver,
    PercentileObserver,
    PruningConfig,
    PTQConfig,
    QATConfig,
    QuantizedLayer,
    dequantize,
    fake_quantize,
    gradual_magnitude_prune,
    hr_summary,
    model_scales,
    model_sparsity,
    model_weight_codes,
    ptq_brecq_like,
    ptq_omniquant_like,
    quantization_error,
    quantize,
    quantize_model,
    run_qat,
    symmetric_scale,
)


class TestQuantizerPrimitives:
    def test_scale_maps_max_to_qmax(self):
        weights = np.array([-0.5, 0.25, 0.5])
        scale = symmetric_scale(weights, bits=8)
        assert np.abs(quantize(weights, scale, 8)).max() == 127

    def test_quantize_clips_to_range(self):
        codes = quantize(np.array([10.0, -10.0]), scale=0.01, bits=8)
        assert codes.max() == 127 and codes.min() == -128

    def test_zero_weights_scale_is_finite(self):
        assert symmetric_scale(np.zeros(10), 8) > 0

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.sampled_from([4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_error_bounded_by_half_lsb(self, seed, bits):
        rng = np.random.default_rng(seed)
        weights = rng.normal(0, 0.1, size=64)
        scale = symmetric_scale(weights, bits)
        reconstructed = dequantize(quantize(weights, scale, bits), scale)
        assert np.all(np.abs(weights - reconstructed) <= scale / 2 + 1e-12)

    def test_fake_quantize_idempotent(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=32)
        scale = symmetric_scale(weights, 8)
        once = fake_quantize(weights, scale, 8)
        assert np.allclose(fake_quantize(once, scale, 8), once)

    def test_quantization_error_decreases_with_bits(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=256)
        e4 = quantization_error(weights, symmetric_scale(weights, 4), 4)
        e8 = quantization_error(weights, symmetric_scale(weights, 8), 8)
        assert e8 < e4

    def test_quantize_model_covers_all_weight_layers(self):
        model = Sequential(Flatten(), Linear(16, 8), ReLU(), Linear(8, 4))
        quantized = quantize_model(model, bits=8)
        assert set(quantized) == {name for name, _ in model.weight_layers()}
        for q in quantized.values():
            assert isinstance(q, QuantizedLayer)
            assert q.codes.dtype == np.int64
        codes = model_weight_codes(model)
        assert all(np.array_equal(codes[k], quantized[k].codes) for k in codes)

    def test_model_scales_positive(self):
        model = Sequential(Linear(8, 8))
        assert all(s > 0 for s in model_scales(model).values())


class TestObservers:
    def test_minmax_observer_scale(self):
        obs = MinMaxObserver(bits=8)
        obs.observe(np.array([0.5, -2.0]))
        obs.observe(np.array([1.0]))
        assert obs.scale == pytest.approx(2.0 / 127)

    def test_minmax_requires_observation(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().scale

    def test_percentile_observer_clips_outliers(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=10000)
        values[0] = 1000.0
        minmax = MinMaxObserver()
        minmax.observe(values)
        pct = PercentileObserver(percentile=99.0)
        pct.observe(values)
        assert pct.scale < minmax.scale

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            PercentileObserver(percentile=0.0)


class TestQAT:
    @pytest.fixture(scope="class")
    def qat_pair(self):
        """Baseline and +LHR QAT runs on ResNet18 (shared across tests for speed)."""
        spec = get_model_spec("resnet18")
        baseline = run_qat(spec, QATConfig(bits=8, epochs=2, learning_rate=3e-3,
                                           lhr_lambda=0.0, seed=0))
        with_lhr = run_qat(spec, QATConfig(bits=8, epochs=2, learning_rate=3e-3,
                                           lhr_lambda=2.0, seed=0))
        return baseline, with_lhr

    def test_qat_produces_codes_for_all_layers(self, qat_pair):
        baseline, _ = qat_pair
        model_layers = {name for name, _ in baseline.model.weight_layers()}
        assert set(baseline.quantized) == model_layers
        assert 0.0 < baseline.hr_average < 1.0
        assert baseline.hr_max >= baseline.hr_average

    def test_lhr_reduces_hr_without_large_accuracy_loss(self, qat_pair):
        """The Table-2 direction: +LHR lowers both HRaverage and HRmax."""
        baseline, with_lhr = qat_pair
        assert with_lhr.hr_average < baseline.hr_average
        assert with_lhr.hr_max < baseline.hr_max + 1e-6
        assert with_lhr.metric >= baseline.metric - 10.0   # accuracy points

    def test_loss_history_recorded(self, qat_pair):
        baseline, _ = qat_pair
        assert len(baseline.loss_history) == baseline.config.epochs

    def test_hr_summary_helper(self, qat_pair):
        baseline, _ = qat_pair
        mean, peak = hr_summary(baseline.weight_codes(), bits=8)
        assert mean == pytest.approx(baseline.hr_average)
        assert peak == pytest.approx(baseline.hr_max)

    def test_uses_lhr_flag(self):
        assert QATConfig(lhr_lambda=1.0).uses_lhr
        assert not QATConfig(lhr_lambda=0.0).uses_lhr


class TestPTQ:
    @pytest.mark.parametrize("method", [ptq_omniquant_like, ptq_brecq_like])
    def test_lhr_reduces_hr_with_small_metric_change(self, method):
        """Table 3: PTQ+LHR reduces HRaver while keeping the task metric close."""
        spec = get_model_spec("vit")
        base = method(spec, PTQConfig(bits=8, use_lhr=False))
        lhr = method(spec, PTQConfig(bits=8, use_lhr=True))
        assert lhr.hr_average < base.hr_average
        # Accuracy stays within a few points (the models are untrained floats here,
        # so the check is that the deployment path runs and stays finite).
        assert np.isfinite(lhr.metric) and np.isfinite(base.metric)

    def test_ptq_result_reports_method(self):
        spec = get_model_spec("gpt2")
        result = ptq_omniquant_like(spec, PTQConfig(bits=8))
        assert result.method == "omniquant-like"
        assert set(result.quantized) == {n for n, _ in result.model.weight_layers()}

    def test_lhr_flip_budget_respected(self):
        spec = get_model_spec("gpt2")
        tight = PTQConfig(bits=8, use_lhr=True, max_flip_fraction=0.0)
        loose = PTQConfig(bits=8, use_lhr=True, max_flip_fraction=0.5)
        r_tight = ptq_brecq_like(spec, tight)
        r_loose = ptq_brecq_like(spec, loose)
        assert r_loose.hr_average <= r_tight.hr_average + 1e-9


class TestPruning:
    def test_sparsity_schedule_monotone(self):
        schedule = PruningConfig(target_sparsity=0.5, steps=4).sparsity_schedule()
        assert all(b >= a for a, b in zip(schedule, schedule[1:]))
        assert schedule[-1] == pytest.approx(0.5)

    def test_pruning_reaches_target_and_lowers_hr(self):
        spec = get_model_spec("vit")
        config = PruningConfig(target_sparsity=0.4, steps=2, finetune_batches=2)
        result = gradual_magnitude_prune(spec, config)
        assert result.sparsity == pytest.approx(0.4, abs=0.05)
        assert model_sparsity(result.model) >= 0.3
        # Pruned weights quantize to 0 codes, so HR drops well below ~0.5.
        dense_hr = hamming_rate(
            np.concatenate([c.reshape(-1) for c in
                            model_weight_codes(spec.build()).values()]), 8)
        assert result.hr_average < dense_hr
