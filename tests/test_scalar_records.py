"""Scalar-record fast path (``RuntimeConfig.traces == "none"``) equivalence.

The trace-free materialization must produce scalar records equivalent to the
full-trace path — discrete fields (failures, stalls, levels) bit-identical,
float reductions (energy, mean drop, elapsed time) to 1e-9 rtol, and extremal
statistics (worst drop, peak Rtog) exactly equal — across all three
controllers, both operating modes, both sweep seed modes, the shared-corpus
stress axes, and every engine variant (reference == scan == batched ==
kernel == ensemble), including
workloads whose logical Sets straddle group boundaries (the coupled-group
heap path).
"""

import numpy as np
import pytest

from repro.sim import RuntimeConfig, simulate
from repro.sweep import (
    SerialExecutor,
    SweepRunner,
    SweepSpec,
    WorkloadSpec,
    build_compiled_workload,
)

from tests.helpers import (
    EXACT_METRICS,
    STRESS_AXES,
    assert_scalar_equivalent,
    contained_sets_spec,
    corpus_scenarios,
    run_engine_variant,
    straddling_sets_spec,
)


def contained_sets_workload(label="scalar-contained"):
    """Independent groups only (Sets inside groups): the kernel paths."""
    return build_compiled_workload(contained_sets_spec(label))


def straddling_sets_workload(label="scalar-straddle"):
    """Two-macro Sets over three-macro groups: the coupled heap path."""
    return build_compiled_workload(straddling_sets_spec(label))


class TestScalarEquivalence:
    @pytest.mark.parametrize("controller", ["dvfs", "booster_safe", "booster"])
    @pytest.mark.parametrize("mode", ["low_power", "sprint"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_controllers_modes_seeds(self, controller, mode, seed):
        compiled = contained_sets_workload()
        kwargs = dict(cycles=400, controller=controller, mode=mode, seed=seed)
        full = simulate(compiled, RuntimeConfig(traces="full", **kwargs))
        scalar = simulate(compiled, RuntimeConfig(traces="none", **kwargs))
        assert_scalar_equivalent(full, scalar)

    @pytest.mark.parametrize("stress", STRESS_AXES)
    def test_stress_axes(self, stress):
        compiled = contained_sets_workload()
        kwargs = dict(cycles=500, controller="booster", seed=7, **stress)
        full = simulate(compiled, RuntimeConfig(traces="full", **kwargs))
        scalar = simulate(compiled, RuntimeConfig(traces="none", **kwargs))
        assert_scalar_equivalent(full, scalar)

    @pytest.mark.parametrize("controller", ["dvfs", "booster_safe", "booster"])
    def test_group_straddling_sets(self, controller):
        """Coupled groups run the heap scheduler; the scalar materialization
        consumes its scalar logs identically."""
        compiled = straddling_sets_workload()
        kwargs = dict(cycles=500, controller=controller, beta=4,
                      recompute_cycles=10, flip_mean=0.8, monitor_noise=0.01,
                      seed=7)
        full = simulate(compiled, RuntimeConfig(traces="full", **kwargs))
        scalar = simulate(compiled, RuntimeConfig(traces="none", **kwargs))
        if controller != "dvfs":                 # the stress must bite
            assert full.total_failures > 50
        assert_scalar_equivalent(full, scalar)

    @pytest.mark.parametrize("controller", ["booster_safe", "booster"])
    def test_engine_variants_agree(self, controller):
        """reference == scan == batched == kernel == ensemble on scalar
        records: every event path feeds the same scalar materialization."""
        compiled = contained_sets_workload()
        kwargs = dict(cycles=500, controller=controller, beta=4,
                      recompute_cycles=10, flip_mean=0.8, monitor_noise=0.01,
                      seed=7)
        reference = run_engine_variant(compiled, "reference", **kwargs)
        for variant in ("scan", "batched", "kernel", "ensemble"):
            result = run_engine_variant(compiled, variant, traces="none",
                                        **kwargs)
            assert_scalar_equivalent(reference, result)

    @pytest.mark.parametrize("scenario", corpus_scenarios()[:3],
                             ids=lambda s: s.label)
    def test_scalar_corpus_scenarios(self, scenario):
        """Corpus draws through the scalar fast path: the kernel and the
        batched ensemble must both match the full-trace reference."""
        compiled = scenario.compiled()
        reference = run_engine_variant(compiled, "reference",
                                       **scenario.kwargs)
        for variant in ("kernel", "ensemble"):
            result = run_engine_variant(compiled, variant, traces="none",
                                        **scenario.kwargs)
            assert_scalar_equivalent(reference, result)

    def test_reference_engine_ignores_traces(self):
        """The oracle always materializes traces, whatever the config says."""
        compiled = contained_sets_workload()
        result = simulate(compiled, RuntimeConfig(
            cycles=200, controller="booster", seed=0, engine="reference",
            traces="none"))
        assert result.macro_results[0].drop_trace is not None

    def test_unknown_traces_mode_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(traces="some").validate()


class TestSweepTraces:
    def spec(self, traces, seed_mode="per_point"):
        workload = WorkloadSpec(
            builder="synthetic", groups=4, macros_per_group=2, banks=4,
            rows=8, operator_rows=16, n_operators=4, code_spread=30.0,
            mapping="sequential", label="scalar-sweep")
        return SweepSpec(name="scalar-sweep", workloads=(workload,),
                         controllers=("booster", "booster_safe", "dvfs"),
                         betas=(5, 20), cycles=300, flip_means=(0.8,),
                         monitor_noises=(0.01,), seeds=2, master_seed=3,
                         seed_mode=seed_mode, traces=traces)

    def test_sweeps_default_to_scalar_fast_path(self):
        assert SweepSpec().traces == "none"
        run = self.spec("none").expand()[0]
        assert run.traces == "none"
        assert run.runtime_config().traces == "none"

    @pytest.mark.parametrize("seed_mode", ["per_point", "shared"])
    def test_records_equivalent_both_seed_modes(self, seed_mode):
        full = SweepRunner(self.spec("full", seed_mode),
                           SerialExecutor()).run()
        scalar = SweepRunner(self.spec("none", seed_mode),
                             SerialExecutor()).run()
        assert full.run_ids == scalar.run_ids
        for ref, fast in zip(full.sorted_records(), scalar.sorted_records()):
            assert ref.point_key == fast.point_key and ref.seed == fast.seed
            for name, value in ref.metrics.items():
                if name in EXACT_METRICS:
                    assert value == fast.metrics[name], (ref.run_id, name)
                else:
                    assert np.isclose(value, fast.metrics[name], rtol=1e-9,
                                      atol=0.0), (ref.run_id, name)

    def test_traces_survive_json_roundtrip(self):
        spec = self.spec("full")
        restored = SweepSpec.from_json_dict(spec.to_json_dict())
        assert restored.traces == "full"
        assert restored == spec
        # Pre-traces result files default to the fast path on load.
        data = spec.to_json_dict()
        del data["traces"]
        assert SweepSpec.from_json_dict(data).traces == "none"

    def test_traces_not_part_of_point_key(self):
        """Resuming a full-trace sweep under the fast path (or vice versa)
        is permitted: traces change materialization, not identity."""
        full_run = self.spec("full").expand()[0]
        none_run = self.spec("none").expand()[0]
        assert full_run.point_key == none_run.point_key

    def test_unknown_traces_rejected(self):
        with pytest.raises(ValueError):
            self.spec("deep")

    def test_resume_across_trace_modes(self, tmp_path):
        """A checkpoint written by a full-trace sweep resumes cleanly under
        the scalar fast path (same seeds, same grid)."""
        path = str(tmp_path / "sweep.json")
        full = SweepRunner(self.spec("full"), SerialExecutor())
        full.run(save_path=path)
        resumed = SweepRunner(self.spec("none"), SerialExecutor()) \
            .run(resume_from=path)
        assert len(resumed.records) == self.spec("none").n_runs
