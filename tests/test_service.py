"""Tests for the crash-safe sweep service (:mod:`repro.service`).

The load-bearing guarantees:

* the job journal is a real WAL: fsync'd appends, per-line digests, torn
  tails dropped and truncated, mid-file corruption quarantined — and replay
  reconstructs the registry through the same apply path live execution uses;
* ``kill -9`` at the nastiest instants (between a durable checkpoint and its
  journal commit, mid-journal-append torn writes, after the ``done`` append
  but before the in-memory apply) + restart yields records **bit-identical**
  to an uninterrupted run — exercised in real subprocesses, since the faults
  ``os._exit`` the daemon;
* submission is idempotent (job keys dedupe across restarts), admission is
  bounded (429-style backpressure with a retry-after hint), cancellation and
  graceful shutdown drain cleanly to resumable checkpoints;
* the REST surface speaks the same contract over HTTP and in-process.

Chaos-extended cases (more kill sites, submit storms over HTTP) run when
``REPRO_CHAOS=1`` — CI's chaos job sets it.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.service import (
    Backpressure,
    InProcessClient,
    JobJournal,
    JobRegistry,
    JobStateError,
    ServiceAPI,
    ServiceClient,
    ServiceError,
    ServiceHTTPServer,
    ServiceUnavailable,
    SweepService,
)
from repro.sweep import (
    FaultSpec,
    SerialExecutor,
    SweepResult,
    SweepRunner,
    SweepSpec,
    WorkloadSpec,
)
from repro.sweep import faults
from repro.sweep.faults import KILL_EXIT_CODE
from repro.sweep.spec import RetryPolicy

CHAOS_EXTENDED = bool(os.environ.get("REPRO_CHAOS"))

#: Fast synthetic workload on a tiny chip: builds in milliseconds, no QAT.
TINY = WorkloadSpec(builder="synthetic", groups=2, macros_per_group=2, banks=4,
                    rows=8, n_operators=4, label="tiny")


def tiny_spec(**overrides) -> SweepSpec:
    defaults = dict(name="t", workloads=(TINY,), controllers=("booster",),
                    betas=(10, 50), cycles=120, seeds=2, master_seed=7)
    defaults.update(overrides)
    return SweepSpec(**defaults)


def wide_spec(**overrides) -> SweepSpec:
    """A 16-run sweep: wide enough to catch mid-flight (cancel/drain/kill)."""
    return tiny_spec(betas=(10, 30, 50, 70), seeds=4, **overrides)


def records_as_dicts(result: SweepResult):
    return [r.to_json_dict() for r in result.sorted_records()]


@pytest.fixture(autouse=True)
def disarmed():
    faults.disarm_faults()
    yield
    faults.disarm_faults()


@pytest.fixture(scope="module")
def baseline():
    return SweepRunner(tiny_spec(), SerialExecutor()).run()


@pytest.fixture(scope="module")
def wide_baseline():
    return SweepRunner(wide_spec(), SerialExecutor()).run()


def service_records(data_dir: str, job_id: str) -> SweepResult:
    """A job's persisted records: its sharded store, or a legacy checkpoint."""
    job_dir = os.path.join(data_dir, "jobs", job_id)
    store_dir = os.path.join(job_dir, "records")
    if os.path.isdir(store_dir):
        return SweepResult.load_resumable(store_dir)
    return SweepResult.load_resumable(os.path.join(job_dir, "checkpoint.json"))


# --------------------------------------------------------------------- #
# journal
# --------------------------------------------------------------------- #
class TestJobJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        journal.append("submit", "j1", total_runs=4)
        journal.append("running", "j1")
        journal.append("done", "j1", records_done=4)
        journal.close()

        events = JobJournal(path).replay()
        assert [e.event for e in events] == ["submit", "running", "done"]
        assert [e.seq for e in events] == [1, 2, 3]
        assert events[0].data["total_runs"] == 4

    def test_every_line_carries_a_valid_digest(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        journal.append("submit", "j1")
        journal.close()
        payload = json.loads(open(path).read())
        assert len(payload.pop("sha256")) == 64

    def test_torn_tail_dropped_and_truncated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        journal.append("submit", "j1")
        journal.append("running", "j1")
        journal.close()
        # Tear the final line mid-write, the way a crash does.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 10)

        reopened = JobJournal(path)
        events = reopened.replay()
        assert [e.event for e in events] == ["submit"]
        assert reopened.stats.torn_tail_dropped == 1
        # The append cursor continues from the last good line: seq 2 again.
        entry = reopened.append("running", "j1")
        assert entry.seq == 2
        reopened.close()
        assert [e.event for e in JobJournal(path).replay()] == \
            ["submit", "running"]

    def test_digest_damage_at_tail_is_a_torn_tail(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        journal.append("submit", "j1")
        journal.append("running", "j1")
        journal.close()
        with open(path, "rb") as handle:
            lines = handle.readlines()
        lines[-1] = lines[-1].replace(b'"event":"running"',
                                      b'"event":"runninh"')
        with open(path, "wb") as handle:
            handle.writelines(lines)

        reopened = JobJournal(path)
        assert [e.event for e in reopened.replay()] == ["submit"]
        assert reopened.stats.torn_tail_dropped == 1
        reopened.close()

    def test_midfile_corruption_quarantines(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        for event in ("submit", "running", "checkpoint", "done"):
            journal.append(event, "j1")
        journal.close()
        with open(path, "rb") as handle:
            lines = handle.readlines()
        lines[1] = b'{"garbage": true}\n'
        with open(path, "wb") as handle:
            handle.writelines(lines)

        reopened = JobJournal(path)
        with pytest.warns(RuntimeWarning, match="corrupt beyond its tail"):
            events = reopened.replay()
        # Only the prefix before the damage is trustworthy.
        assert [e.event for e in events] == ["submit"]
        assert reopened.stats.corrupt_lines == 1
        assert os.path.exists(path + ".corrupt")
        reopened.close()
        # The rewritten journal is intact and appendable.
        final = JobJournal(path)
        assert [e.event for e in final.replay()] == ["submit"]
        final.append("running", "j1")
        final.close()

    def test_seq_gap_is_damage(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        for event in ("submit", "running", "done"):
            journal.append(event, "j1")
        journal.close()
        with open(path, "rb") as handle:
            lines = handle.readlines()
        with open(path, "wb") as handle:
            handle.writelines([lines[0], lines[2]])     # drop seq 2

        reopened = JobJournal(path)
        assert [e.event for e in reopened.replay()] == ["submit"]
        reopened.close()

    def test_compaction_preserves_seq_monotonicity(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        for event in ("submit", "running", "done"):
            journal.append(event, "j1")
        journal.compact([{"job_id": "j1", "state": "done"}])
        entry = journal.append("submit", "j2")
        journal.close()
        events = JobJournal(path).replay()
        assert [e.event for e in events] == ["snapshot", "submit"]
        assert events[0].seq == 4 and entry.seq == 5

    def test_torn_write_fault_site_is_covered(self, tmp_path):
        """The journal_torn chaos fault tears the just-appended line.

        The kill half (``os._exit``) can only run in a subprocess — the
        daemon chaos tests below cover it; here we prove the injection
        site sits between write and fsync by checking the fault fires at
        all (via a subprocess in TestDaemonChaos).
        """
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        journal.append("submit", "j1")
        journal.close()
        # No plan armed: the site is a no-op and the line is intact.
        assert len(JobJournal(path).replay()) == 1


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestJobRegistry:
    def open_registry(self, tmp_path) -> JobRegistry:
        return JobRegistry.open(JobJournal(str(tmp_path / "j.jsonl")))

    def test_lifecycle_happy_path(self, tmp_path):
        registry = self.open_registry(tmp_path)
        job, created = registry.submit({"name": "s"}, total_runs=4)
        assert created and job.state == "submitted"
        registry.transition("admit", job.job_id)
        registry.transition("running", job.job_id)
        registry.transition("checkpoint", job.job_id, records_done=2,
                            failed_runs=0)
        final = registry.transition("done", job.job_id, records_done=4,
                                    failed_runs=0)
        assert final.state == "done" and final.records_done == 4
        assert final.checkpoints == 1

    def test_illegal_transitions_rejected(self, tmp_path):
        registry = self.open_registry(tmp_path)
        job, _ = registry.submit({"name": "s"})
        with pytest.raises(JobStateError):
            registry.transition("done", job.job_id)      # not running yet
        with pytest.raises(JobStateError):
            registry.transition("nonsense", job.job_id)
        with pytest.raises(KeyError):
            registry.transition("admit", "j999999")

    def test_replay_reconstructs_identical_state(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        registry = JobRegistry.open(JobJournal(path))
        job, _ = registry.submit({"name": "s"}, job_key="k", total_runs=4)
        registry.transition("admit", job.job_id)
        registry.transition("running", job.job_id)
        registry.transition("checkpoint", job.job_id, records_done=2,
                            failed_runs=1)
        registry.journal.close()

        replayed = JobRegistry.open(JobJournal(path))
        original = registry.get(job.job_id).to_dict()
        restored = replayed.get(job.job_id).to_dict()
        # updated_ts is wall-clock at apply time; everything else matches.
        original.pop("updated_ts"), restored.pop("updated_ts")
        assert restored == original
        assert replayed.find_by_key("k").job_id == job.job_id

    def test_idempotent_submit_and_spec_conflict(self, tmp_path):
        registry = self.open_registry(tmp_path)
        first, created = registry.submit({"name": "a"}, job_key="k")
        again, attached = registry.submit({"name": "a"}, job_key="k")
        assert created and not attached
        assert again.job_id == first.job_id
        with pytest.raises(JobStateError, match="different spec"):
            registry.submit({"name": "b"}, job_key="k")

    def test_recover_interrupted_readmits_and_counts(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        registry = JobRegistry.open(JobJournal(path))
        running, _ = registry.submit({"name": "a"}, job_key="a")
        registry.transition("admit", running.job_id)
        registry.transition("running", running.job_id)
        finished, _ = registry.submit({"name": "b"}, job_key="b")
        registry.transition("admit", finished.job_id)
        registry.transition("running", finished.job_id)
        registry.transition("done", finished.job_id)
        registry.journal.close()

        replayed = JobRegistry.open(JobJournal(path))
        interrupted = replayed.recover_interrupted()
        assert [j.job_id for j in interrupted] == [running.job_id]
        recovered = replayed.get(running.job_id)
        assert recovered.state == "admitted" and recovered.recoveries == 1
        assert replayed.get(finished.job_id).state == "done"

    def test_compaction_roundtrip_and_id_monotonicity(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        registry = JobRegistry.open(JobJournal(path))
        for key in ("a", "b"):
            job, _ = registry.submit({"name": key}, job_key=key)
            registry.transition("admit", job.job_id)
        assert registry.maybe_compact(max_bytes=1)
        assert not registry.maybe_compact(max_bytes=1 << 30)
        registry.journal.close()

        replayed = JobRegistry.open(JobJournal(path))
        assert {j.job_key for j in replayed.list_jobs()} == {"a", "b"}
        assert [j.state for j in replayed.list_jobs()] == \
            ["admitted", "admitted"]
        # Fresh ids continue after the compacted ones: no reuse.
        newer, _ = replayed.submit({"name": "c"}, job_key="c")
        assert newer.job_id == "j000003"


# --------------------------------------------------------------------- #
# service core (in-process)
# --------------------------------------------------------------------- #
class TestServiceLifecycle:
    def test_submit_run_result_roundtrip(self, tmp_path, baseline):
        service = SweepService(str(tmp_path), checkpoint_every=2).start()
        try:
            client = InProcessClient(ServiceAPI(service))
            job = client.submit(tiny_spec(), job_key="k1")
            assert job["created"] and job["state"] == "admitted"
            final = client.wait(job["job_id"])
            assert final["state"] == "done"
            assert final["records_done"] == tiny_spec().n_runs
            assert final["checkpoints"] >= 2
            payload = client.result(job["job_id"])
            assert payload["n_records"] == tiny_spec().n_runs
            assert [r["run_id"] for r in payload["records"]] == \
                [r["run_id"] for r in records_as_dicts(baseline)]
            slim = client.result(job["job_id"], include_records=False)
            assert "records" not in slim and slim["points"]
            # Bit-identical to the library path.
            stored = service_records(str(tmp_path), job["job_id"])
            assert records_as_dicts(stored) == records_as_dicts(baseline)
        finally:
            service.shutdown(timeout=30)

    def test_duplicate_job_key_attaches(self, tmp_path):
        service = SweepService(str(tmp_path)).start()
        try:
            client = InProcessClient(ServiceAPI(service))
            first = client.submit(tiny_spec(), job_key="dup")
            again = client.submit(tiny_spec(), job_key="dup")
            assert first["created"] and not again["created"]
            assert again["job_id"] == first["job_id"]
            client.wait(first["job_id"])
            # Attaching after completion serves the existing result too.
            late = client.submit(tiny_spec(), job_key="dup")
            assert not late["created"] and late["state"] == "done"
        finally:
            service.shutdown(timeout=30)

    def test_conflicting_spec_for_key_is_409(self, tmp_path):
        # Scheduler intentionally not started: pure admission-layer test.
        service = SweepService(str(tmp_path))
        client = InProcessClient(ServiceAPI(service))
        client.submit(tiny_spec(), job_key="k")
        with pytest.raises(ServiceError) as info:
            client.submit(tiny_spec(master_seed=8), job_key="k")
        assert info.value.status == 409
        service.journal.close()

    def test_backpressure_rejects_with_retry_after(self, tmp_path):
        service = SweepService(str(tmp_path), max_queue=2)   # not started
        client = InProcessClient(ServiceAPI(service))
        client.submit(tiny_spec(), job_key="a")
        client.submit(tiny_spec(), job_key="b")
        with pytest.raises(ServiceError) as info:
            client.submit(tiny_spec(), job_key="c")
        assert info.value.status == 429
        assert info.value.retry_after > 0
        # A duplicate of admitted work is exempt: attaching costs nothing.
        attached = client.submit(tiny_spec(), job_key="a")
        assert not attached["created"]
        service.journal.close()

    def test_submit_storm_admits_exactly_the_queue_bound(self, tmp_path):
        service = SweepService(str(tmp_path), max_queue=3)   # not started
        spec = tiny_spec().to_json_dict()
        outcomes = []

        def storm(index: int) -> None:
            try:
                _, created = service.submit(spec, job_key=f"k{index}")
                outcomes.append(("admitted", created))
            except Backpressure as error:
                outcomes.append(("rejected", error.retry_after))

        threads = [threading.Thread(target=storm, args=(i,))
                   for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        admitted = [o for o in outcomes if o[0] == "admitted"]
        rejected = [o for o in outcomes if o[0] == "rejected"]
        assert len(admitted) == 3 and len(rejected) == 9
        assert all(hint > 0 for _, hint in rejected)
        service.journal.close()
        # The storm's journal replays to a consistent registry.
        replayed = JobRegistry.open(
            JobJournal(str(tmp_path / "journal.jsonl")))
        assert len(replayed.list_jobs()) == 3
        assert all(j.state == "admitted" for j in replayed.list_jobs())

    def test_cancel_queued_job_is_instant(self, tmp_path):
        service = SweepService(str(tmp_path), max_queue=4)   # not started
        client = InProcessClient(ServiceAPI(service))
        job = client.submit(tiny_spec(), job_key="q")
        cancelled = client.cancel(job["job_id"])
        assert cancelled["state"] == "cancelled"
        service.journal.close()

    def test_cancel_running_job_drains_cleanly(self, tmp_path):
        service = SweepService(str(tmp_path), checkpoint_every=1).start()
        try:
            client = InProcessClient(ServiceAPI(service))
            job = client.submit(wide_spec(), job_key="c")
            deadline = time.monotonic() + 60
            while client.status(job["job_id"])["records_done"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            client.cancel(job["job_id"])
            final = client.wait(job["job_id"])
            assert final["state"] == "cancelled"
            assert final["cancel_requested"]
            assert 1 <= final["records_done"] < wide_spec().n_runs
            # The partial work is checkpointed, not lost.
            partial = service_records(str(tmp_path), job["job_id"])
            assert len(partial.records) == final["records_done"]
        finally:
            service.shutdown(timeout=30)

    def test_result_before_terminal_is_409(self, tmp_path):
        service = SweepService(str(tmp_path), max_queue=4)   # not started
        client = InProcessClient(ServiceAPI(service))
        job = client.submit(tiny_spec(), job_key="r")
        with pytest.raises(ServiceError) as info:
            client.result(job["job_id"])
        assert info.value.status == 409
        service.journal.close()

    def test_draining_service_is_503(self, tmp_path):
        service = SweepService(str(tmp_path))
        service._draining.set()
        client = InProcessClient(ServiceAPI(service))
        with pytest.raises(ServiceError) as info:
            client.submit(tiny_spec(), job_key="late")
        assert info.value.status == 503
        service.journal.close()

    def test_health_reports_fleet_queue_and_store(self, tmp_path):
        service = SweepService(str(tmp_path)).start()
        try:
            health = InProcessClient(ServiceAPI(service)).health()
            assert health["status"] == "ok"
            assert health["scheduler_alive"]
            assert health["queue_depth"] == 0
            assert health["fleet"]["executor"] == "SerialExecutor"
            assert health["fleet"]["supervised"]
            assert health["fleet"]["store_attached"]
            assert health["store"]["entries"] >= 0
            assert health["journal"]["appended"] >= 1
            assert set(health["jobs"]) == {"submitted", "admitted", "running",
                                           "suspended", "done", "failed",
                                           "cancelled"}
            assert health["degraded_reasons"] == []
            assert health["lease"] and not health["lease"]["lost"]
            assert health["active_jobs"] == []
        finally:
            service.shutdown(timeout=30)

    def test_graceful_shutdown_drains_and_restart_completes(
            self, tmp_path, wide_baseline):
        service = SweepService(str(tmp_path), checkpoint_every=1).start()
        job_id = None
        try:
            job, _ = service.submit(wide_spec().to_json_dict(), job_key="g")
            job_id = job.job_id
            deadline = time.monotonic() + 60
            while service.status(job_id)["records_done"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.02)
        finally:
            service.shutdown(timeout=60)
        drained = service.status(job_id)
        assert drained["state"] == "running"          # journaled mid-flight
        assert drained["records_done"] >= 1

        resumed = SweepService(str(tmp_path), checkpoint_every=4).start()
        try:
            final = resumed.wait_for(job_id, timeout=120)
            assert final["state"] == "done"
            assert final["recoveries"] == 1
            stored = service_records(str(tmp_path), job_id)
            assert records_as_dicts(stored) == records_as_dicts(wide_baseline)
        finally:
            resumed.shutdown(timeout=30)

    def test_failing_spec_lands_in_failed(self, tmp_path):
        service = SweepService(str(tmp_path)).start()
        try:
            spec = tiny_spec().to_json_dict()
            spec["seeds"] = 0       # no longer round-trips through SweepSpec
            # Bypass submit-time validation to hit the execution error path
            # (models a journaled spec from an older, looser schema).
            job, _ = service.registry.submit(spec, job_key="bad",
                                             total_runs=4)
            service.registry.transition("admit", job.job_id)
            with service._lock:
                service._queue.append(job.job_id)
            service._wake.set()
            final = service.wait_for(job.job_id, timeout=60)
            assert final["state"] == "failed"
            assert final["error"]
        finally:
            service.shutdown(timeout=30)


# --------------------------------------------------------------------- #
# HTTP transport
# --------------------------------------------------------------------- #
class TestHTTPTransport:
    def test_rest_roundtrip(self, tmp_path, baseline):
        service = SweepService(str(tmp_path), checkpoint_every=2).start()
        http = ServiceHTTPServer(service).start()
        try:
            client = ServiceClient(http.url)
            job = client.submit(tiny_spec(), job_key="h")
            assert job["created"]
            again = client.submit(tiny_spec(), job_key="h")
            assert not again["created"]
            final = client.wait(job["job_id"])
            assert final["state"] == "done"
            payload = client.result(job["job_id"], include_records=False)
            assert payload["n_records"] == tiny_spec().n_runs
            assert "records" not in payload
            assert client.health()["status"] == "ok"
            assert any(j["job_id"] == job["job_id"] for j in client.jobs())
        finally:
            http.stop()
            service.shutdown(timeout=30)

    def test_http_error_contract(self, tmp_path):
        service = SweepService(str(tmp_path), max_queue=1)   # not started
        http = ServiceHTTPServer(service).start()
        try:
            client = ServiceClient(http.url)
            with pytest.raises(ServiceError) as info:
                client.status("j999999")
            assert info.value.status == 404
            with pytest.raises(ServiceError) as info:
                client._request("POST", "/jobs", {"not_spec": 1})
            assert info.value.status == 400
            client.submit(tiny_spec(), job_key="only")
            with pytest.raises(ServiceError) as info:
                client.submit(tiny_spec(master_seed=9), job_key="other")
            assert info.value.status == 429
            assert info.value.retry_after > 0
        finally:
            http.stop()
            service.journal.close()


# --------------------------------------------------------------------- #
# daemon chaos: kill -9 + restart => bit-identical records
# --------------------------------------------------------------------- #
def _daemon_once(data_dir, spec_dict, fault_dicts, job_key):
    """Child-process body: run one daemon pass over ``data_dir``.

    Arms the given fault plan (disarming anything inherited first), submits
    — or, after a restart, attaches to — the job, waits for it, and shuts
    down gracefully.  An armed ``daemon_kill``/``journal_torn`` fault
    ``os._exit(KILL_EXIT_CODE)``s somewhere in the middle, which is the
    point.
    """
    faults.disarm_faults()
    if fault_dicts:
        faults.arm_faults(*[FaultSpec(**f) for f in fault_dicts])
    service = SweepService(data_dir, checkpoint_every=1,
                           attach_store=False).start()
    job, _created = service.submit(spec_dict, job_key=job_key)
    service.wait_for(job.job_id, timeout=120)
    service.shutdown(timeout=60)
    os._exit(0)


def run_daemon_once(data_dir: str, spec: SweepSpec, fault_dicts=(),
                    job_key: str = "chaos") -> int:
    context = multiprocessing.get_context("fork")
    child = context.Process(
        target=_daemon_once,
        args=(data_dir, spec.to_json_dict(), list(fault_dicts), job_key))
    child.start()
    child.join(timeout=180)
    if child.is_alive():                      # pragma: no cover - deadline
        child.kill()
        child.join()
        pytest.fail("daemon child did not exit within the deadline")
    return child.exitcode


KILL_SITES = [
    # The acceptance-criterion site: the sweep checkpoint is durable on disk
    # but its journal commit never happened.
    pytest.param({"kind": "daemon_kill", "match": "daemon:post_checkpoint"},
                 id="between-checkpoint-and-journal-commit"),
    # Torn write in the middle of a journal append (a checkpoint event).
    pytest.param({"kind": "journal_torn", "match": "#checkpoint"},
                 id="mid-journal-append-torn"),
    # The done event hit the journal but the crash beat the in-memory apply.
    pytest.param({"kind": "daemon_kill", "match": "registry:done"},
                 id="after-done-append",
                 marks=pytest.mark.skipif(not CHAOS_EXTENDED,
                                          reason="REPRO_CHAOS=1 only")),
    # The done append itself tears.
    pytest.param({"kind": "journal_torn", "match": "#done"},
                 id="done-append-torn",
                 marks=pytest.mark.skipif(not CHAOS_EXTENDED,
                                          reason="REPRO_CHAOS=1 only")),
    # Kill between the submit append and its apply.
    pytest.param({"kind": "daemon_kill", "match": "registry:submit"},
                 id="mid-submit",
                 marks=pytest.mark.skipif(not CHAOS_EXTENDED,
                                          reason="REPRO_CHAOS=1 only")),
    # Kill as the graceful drain starts.
    pytest.param({"kind": "daemon_kill", "match": "daemon:drain"},
                 id="mid-drain",
                 marks=pytest.mark.skipif(not CHAOS_EXTENDED,
                                          reason="REPRO_CHAOS=1 only")),
]


class TestDaemonChaos:
    @pytest.mark.parametrize("fault", KILL_SITES)
    def test_kill_restart_is_bit_identical(self, tmp_path, baseline, fault):
        data_dir = str(tmp_path / "svc")
        spec = tiny_spec()
        first = run_daemon_once(data_dir, spec, [fault])
        assert first == KILL_EXIT_CODE, \
            f"fault {fault} never fired (exit {first})"
        # Restart over the same data dir, no faults: recovery must finish
        # the job and the records must match an uninterrupted serial run.
        second = run_daemon_once(data_dir, spec, [])
        assert second == 0

        registry = JobRegistry.open(
            JobJournal(os.path.join(data_dir, "journal.jsonl")))
        job = registry.find_by_key("chaos")
        assert job is not None and job.state == "done"
        stored = service_records(data_dir, job.job_id)
        assert records_as_dicts(stored) == records_as_dicts(baseline)
        assert len({r.run_id for r in stored.records}) == spec.n_runs

    def test_recovery_is_attributed_in_job_status(self, tmp_path):
        data_dir = str(tmp_path / "svc")
        spec = tiny_spec()
        fault = {"kind": "daemon_kill", "match": "daemon:post_checkpoint"}
        assert run_daemon_once(data_dir, spec, [fault]) == KILL_EXIT_CODE
        assert run_daemon_once(data_dir, spec, []) == 0
        registry = JobRegistry.open(
            JobJournal(os.path.join(data_dir, "journal.jsonl")))
        job = registry.find_by_key("chaos")
        # The restart re-admitted the interrupted job exactly once, and the
        # idempotent resubmission in the second child attached instead of
        # creating a twin.
        assert job.recoveries == 1
        assert len(registry.list_jobs()) == 1

    @pytest.mark.skipif(not CHAOS_EXTENDED, reason="REPRO_CHAOS=1 only")
    def test_double_kill_then_recovery(self, tmp_path, baseline):
        """Two crashes at different sites back to back still converge."""
        data_dir = str(tmp_path / "svc")
        spec = tiny_spec()
        first = {"kind": "daemon_kill", "match": "daemon:post_checkpoint"}
        torn = {"kind": "journal_torn", "match": "#checkpoint"}
        assert run_daemon_once(data_dir, spec, [first]) == KILL_EXIT_CODE
        assert run_daemon_once(data_dir, spec, [torn]) == KILL_EXIT_CODE
        assert run_daemon_once(data_dir, spec, []) == 0
        registry = JobRegistry.open(
            JobJournal(os.path.join(data_dir, "journal.jsonl")))
        job = registry.find_by_key("chaos")
        assert job.state == "done" and job.recoveries == 2
        stored = service_records(data_dir, job.job_id)
        assert records_as_dicts(stored) == records_as_dicts(baseline)


# --------------------------------------------------------------------- #
# multi-job scheduling: fair share, isolation, circuit breaker, lease,
# disk-exhaustion degraded mode (PR 10)
# --------------------------------------------------------------------- #
def second_spec(**overrides) -> SweepSpec:
    """A second 16-run sweep with its own name (distinct run-id namespace)."""
    defaults = dict(name="u", master_seed=11)
    defaults.update(overrides)
    return wide_spec(**defaults)


@pytest.fixture(scope="module")
def second_baseline():
    return SweepRunner(second_spec(), SerialExecutor()).run()


def journal_events(data_dir: str):
    events = []
    with open(os.path.join(data_dir, "journal.jsonl"), encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                events.append(json.loads(line))
    return events


class TestMultiJobScheduling:
    def test_two_jobs_interleave_and_both_complete(self, tmp_path,
                                                   wide_baseline,
                                                   second_baseline):
        service = SweepService(str(tmp_path), checkpoint_every=1,
                               fair_share_quantum=4).start()
        try:
            a, _ = service.submit(wide_spec().to_json_dict(), job_key="a")
            b, _ = service.submit(second_spec().to_json_dict(), job_key="b")
            final_a = service.wait_for(a.job_id, timeout=120)
            final_b = service.wait_for(b.job_id, timeout=120)
            assert final_a["state"] == "done"
            assert final_b["state"] == "done"
            stored_a = service_records(str(tmp_path), a.job_id)
            stored_b = service_records(str(tmp_path), b.job_id)
            assert records_as_dicts(stored_a) == \
                records_as_dicts(wide_baseline)
            assert records_as_dicts(stored_b) == \
                records_as_dicts(second_baseline)
        finally:
            service.shutdown(timeout=30)
        # Fair share actually interleaved: each job checkpointed before the
        # *other* finished — a serializing scheduler would run one job's 16
        # checkpoints and its `done` before the other's first checkpoint.
        events = journal_events(str(tmp_path))
        first_done = min(i for i, e in enumerate(events)
                         if e["event"] == "done")
        checkpointed_before = {e.get("job_id") for e in events[:first_done]
                               if e["event"] == "checkpoint"}
        assert checkpointed_before == {a.job_id, b.job_id}

    def test_run_id_collision_defers_not_corrupts(self, tmp_path, baseline):
        """Two jobs over the *same spec name* share run ids; the slice
        builder must never fly ambiguous ownership in one pass."""
        service = SweepService(str(tmp_path), checkpoint_every=2).start()
        try:
            a, _ = service.submit(tiny_spec().to_json_dict(), job_key="a")
            b, _ = service.submit(tiny_spec(master_seed=7).to_json_dict(),
                                  job_key="b")
            # Same fingerprint jobs under different keys are distinct jobs.
            assert a.job_id != b.job_id
            assert service.wait_for(a.job_id)["state"] == "done"
            assert service.wait_for(b.job_id)["state"] == "done"
            for job_id in (a.job_id, b.job_id):
                stored = service_records(str(tmp_path), job_id)
                assert records_as_dicts(stored) == records_as_dicts(baseline)
        finally:
            service.shutdown(timeout=30)

    def test_failed_runs_record_which_fault_fired(self, tmp_path):
        """Satellite: quarantined runs name the injected fault that killed
        them (site@attempt), when a plan is armed."""
        from repro.store import scan_store
        spec = tiny_spec()
        run_id = spec.expand()[0].run_id
        service = SweepService(
            str(tmp_path), checkpoint_every=1,
            retry_policy=RetryPolicy(max_attempts=2, backoff=0.01))
        with faults.injected_faults(
                FaultSpec(kind="raise", match=run_id, times=2)):
            service.start()
            try:
                job, _ = service.submit(spec.to_json_dict(), job_key="f")
                final = service.wait_for(job.job_id, timeout=60)
            finally:
                service.shutdown(timeout=30)
        assert final["state"] == "done"
        assert final["failed_runs"] == 1
        report = scan_store(service.store_path(job.job_id))
        assert [f.run_id for f in report.failed] == [run_id]
        assert report.failed[0].fault == "raise@1,raise@2"


class TestCircuitBreaker:
    def _poison_service(self, data_dir: str) -> SweepService:
        from repro.sweep import PoolExecutor
        policy = RetryPolicy(max_attempts=2, backoff=0.01)
        executor = PoolExecutor(processes=2, retry_policy=policy,
                                run_timeout=1.0)
        return SweepService(data_dir, executor=executor, checkpoint_every=4,
                            breaker_budget=2, fair_share_quantum=4,
                            attach_store=False)

    def test_poison_job_quarantined_healthy_job_unharmed(
            self, tmp_path, wide_baseline):
        """The tentpole chaos scenario, phase 1: a job whose runs kill
        workers trips the breaker and lands in ``suspended``; a healthy
        concurrent job completes bit-identically."""
        from repro.store import scan_store
        poison = second_spec(name="poison")
        service = self._poison_service(str(tmp_path))
        with faults.injected_faults(
                FaultSpec(kind="kill", match="poison", times=3)):
            service.start()
            try:
                bad, _ = service.submit(poison.to_json_dict(), job_key="bad")
                good, _ = service.submit(wide_spec().to_json_dict(),
                                         job_key="good")
                suspended = service.wait_for(
                    bad.job_id, timeout=120,
                    states=("suspended", "done", "failed", "cancelled"))
                healthy = service.wait_for(good.job_id, timeout=120)
            finally:
                service.shutdown(timeout=60)
        assert suspended["state"] == "suspended"
        assert "circuit breaker" in suspended["suspend_reason"]
        assert suspended["suspensions"] == 1
        assert healthy["state"] == "done"
        stored = service_records(str(tmp_path), good.job_id)
        assert records_as_dicts(stored) == records_as_dicts(wide_baseline)
        # Satellite: the quarantined runs are attributed to the kill fault.
        report = scan_store(service.store_path(bad.job_id))
        assert report.failed, "poison runs should be quarantined in-store"
        assert all(f.fault.startswith("kill@") for f in report.failed)

        # Phase 2: suspension is sticky across restarts — the breaker
        # tripped on behavior, which a restart does not change.
        resumed_service = SweepService(str(tmp_path), checkpoint_every=4,
                                       attach_store=False).start()
        try:
            assert resumed_service.status(bad.job_id)["state"] == "suspended"
            health = resumed_service.health()
            assert health["jobs"]["suspended"] == 1

            # Phase 3: the explicit resume path retries the quarantined
            # runs (faults disarmed now) to a bit-identical full result.
            resumed_service.resume(bad.job_id)
            final = resumed_service.wait_for(bad.job_id, timeout=120)
            assert final["state"] == "done"
            poison_baseline = SweepRunner(poison, SerialExecutor()).run()
            stored = service_records(str(tmp_path), bad.job_id)
            assert records_as_dicts(stored) == \
                records_as_dicts(poison_baseline)
        finally:
            resumed_service.shutdown(timeout=60)

    def test_resume_requires_suspended_state(self, tmp_path):
        service = SweepService(str(tmp_path))     # not started
        client = InProcessClient(ServiceAPI(service))
        job = client.submit(tiny_spec(), job_key="r")
        with pytest.raises(ServiceError) as info:
            client.resume(job["job_id"])
        assert info.value.status == 409
        service.journal.close()

    def test_cancel_suspended_job_is_instant(self, tmp_path):
        """A quarantined job cancels without touching the fleet."""
        service = SweepService(str(tmp_path))     # not started
        job, _ = service.submit(tiny_spec().to_json_dict(), job_key="s")
        service.registry.transition("running", job.job_id)
        service.registry.transition("suspend", job.job_id, reason="test")
        cancelled = service.cancel(job.job_id)
        assert cancelled.state == "cancelled"
        service.journal.close()


class TestStateDirLease:
    def test_second_daemon_refused_then_allowed_after_shutdown(
            self, tmp_path):
        from repro.service import LeaseHeld
        first = SweepService(str(tmp_path), lease_ttl=5.0).start()
        try:
            second = SweepService(str(tmp_path), lease_ttl=5.0)
            with pytest.raises(LeaseHeld) as info:
                second.start()
            assert "leased by" in str(info.value)
            second.journal.close()
        finally:
            first.shutdown(timeout=30)
        third = SweepService(str(tmp_path), lease_ttl=5.0).start()
        third.shutdown(timeout=30)

    def test_takeover_of_dead_same_host_holder_is_immediate(self, tmp_path):
        """A kill -9'd holder leaves a fresh-looking lease; the same-host
        pid liveness check lets the restart take over without a TTL wait."""
        from repro.service.lease import LEASE_NAME
        # Forge a lease held by a dead pid with a *fresh* heartbeat.
        dead = {"owner": "host:999999:dead", "pid": 999_999,
                "host": __import__("socket").gethostname(),
                "heartbeat_ts": time.time()}
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(os.path.join(str(tmp_path), LEASE_NAME), "w") as fh:
            json.dump(dead, fh)
        started = time.monotonic()
        service = SweepService(str(tmp_path), lease_ttl=30.0).start()
        try:
            assert time.monotonic() - started < 5.0
            assert service.health()["lease"]["takeovers"] == 1
        finally:
            service.shutdown(timeout=30)

    def test_foreign_host_holder_needs_ttl_expiry(self, tmp_path):
        from repro.service import LeaseHeld
        from repro.service.lease import LEASE_NAME
        foreign = {"owner": "elsewhere:1:abc", "pid": 1,
                   "host": "some-other-host",
                   "heartbeat_ts": time.time()}
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(os.path.join(str(tmp_path), LEASE_NAME), "w") as fh:
            json.dump(foreign, fh)
        service = SweepService(str(tmp_path), lease_ttl=0.3)
        with pytest.raises(LeaseHeld):
            service.start()                      # heartbeat still fresh
        time.sleep(0.4)                          # now older than the TTL
        service.start()
        service.shutdown(timeout=30)

    def test_stolen_lease_fences_and_drains(self, tmp_path):
        """The ``lease_stolen`` chaos fault rewrites the lease under a live
        daemon; the holder must fence itself instead of fighting."""
        service = SweepService(str(tmp_path), lease_ttl=0.2)
        with faults.injected_faults(FaultSpec(kind="lease_stolen")):
            service.start()
            deadline = time.monotonic() + 10
            while not service._lease_lost.is_set():
                assert time.monotonic() < deadline, "theft never observed"
                time.sleep(0.02)
        health = service.health()
        assert health["status"] == "draining"
        assert health["degraded"]
        assert "lease_stolen" in health["degraded_reasons"]
        with pytest.raises(ServiceUnavailable):
            service.submit(tiny_spec().to_json_dict(), job_key="late")
        service.shutdown(timeout=30)
        # Fenced: no service_stop was appended over the thief's journal.
        assert all(e["event"] != "service_stop"
                   for e in journal_events(str(tmp_path)))


class TestDiskExhaustion:
    def test_journal_buffers_enospc_and_drains(self, tmp_path):
        """Unit level: appends during the outage buffer in order, health
        counters show it, and the next good write drains everything."""
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        journal.append("service_start", pid=1)
        with faults.injected_faults(
                FaultSpec(kind="disk_full", match="journal:", times=2)):
            journal.append("submit", "j1", spec={"x": 1})
            journal.append("admit", "j1")
            assert journal.disk_degraded()
            assert journal.pending_lines() == 2
            assert journal.stats.disk_full_errors == 2
        journal.append("running", "j1")          # space is back: drains all
        assert not journal.disk_degraded()
        assert journal.pending_lines() == 0
        journal.close()
        replayed = [e for e in JobJournal(path).replay()]
        assert [e.event for e in replayed] == \
            ["service_start", "submit", "admit", "running"]
        assert [e.seq for e in replayed] == [1, 2, 3, 4]

    def test_degraded_admission_returns_503_then_recovers(self, tmp_path):
        """Service level: a full disk stops *new* admissions (503), keeps
        the daemon alive, and admission resumes once space returns."""
        service = SweepService(str(tmp_path))    # not started: deterministic
        with faults.injected_faults(
                FaultSpec(kind="disk_full", match="journal:", times=4)):
            # This submit's journal appends hit ENOSPC and buffer.
            job, created = service.submit(tiny_spec().to_json_dict(),
                                          job_key="first")
            assert created and service.journal.disk_degraded()
            health = service.health()
            assert health["degraded"]
            assert any("journal" in r for r in health["degraded_reasons"])
            with pytest.raises(ServiceUnavailable) as info:
                service.submit(second_spec().to_json_dict(), job_key="second")
            assert "disk full" in str(info.value)
            # Idempotent re-attach to existing work stays allowed.
            again, created = service.submit(tiny_spec().to_json_dict(),
                                            job_key="first")
            assert not created and again.job_id == job.job_id
        # Space restored: the next append drains the backlog...
        service.submit(second_spec().to_json_dict(), job_key="second")
        assert not service.journal.disk_degraded()
        assert not service.health()["degraded_reasons"]
        service.journal.close()
        # ...and nothing was lost or duplicated across the outage.
        replayed = JobRegistry.open(
            JobJournal(str(tmp_path / "journal.jsonl")))
        assert len(replayed.list_jobs()) == 2
        assert all(j.state == "admitted" for j in replayed.list_jobs())

    def test_job_survives_store_enospc_and_audits_clean(self, tmp_path):
        """A record store hitting ENOSPC mid-job degrades (backlog) instead
        of failing the job; once space returns the job completes and its
        store passes the audit doctor."""
        from repro.store.audit import main as audit_main
        service = SweepService(str(tmp_path), checkpoint_every=1,
                               attach_store=False)
        with faults.injected_faults(
                FaultSpec(kind="disk_full", match="shard:", times=3)):
            service.start()
            try:
                job, _ = service.submit(wide_spec().to_json_dict(),
                                        job_key="d")
                final = service.wait_for(job.job_id, timeout=120)
            finally:
                service.shutdown(timeout=60)
        assert final["state"] == "done"
        store_dir = service.store_path(job.job_id)
        assert audit_main([store_dir]) == 0
        stored = service_records(str(tmp_path), job.job_id)
        baseline = SweepRunner(wide_spec(), SerialExecutor()).run()
        assert records_as_dicts(stored) == records_as_dicts(baseline)


class TestLongPollRecords:
    def test_wait_seq_blocks_until_new_records(self, tmp_path):
        service = SweepService(str(tmp_path), checkpoint_every=1).start()
        try:
            client = InProcessClient(ServiceAPI(service))
            job = client.submit(wide_spec(), job_key="lp")
            # Long-poll from zero: returns as soon as any record lands.
            page = client.records(job["job_id"], wait_seq=0, wait_timeout=30)
            assert page["seq"] >= 1
            assert page["total_records"] == page["seq"]
            # Stream the rest: each call waits for progress past `seq`.
            seq = page["seq"]
            deadline = time.monotonic() + 60
            while not page["resting"]:
                assert time.monotonic() < deadline
                page = client.records(job["job_id"], wait_seq=seq,
                                      wait_timeout=30)
                assert page["seq"] >= seq        # never goes backwards
                seq = page["seq"]
            assert seq == wide_spec().n_runs
            assert client.status(job["job_id"])["state"] == "done"
        finally:
            service.shutdown(timeout=30)

    def test_wait_seq_on_resting_job_returns_immediately(self, tmp_path):
        service = SweepService(str(tmp_path)).start()
        try:
            client = InProcessClient(ServiceAPI(service))
            job = client.submit(tiny_spec(), job_key="done")
            client.wait(job["job_id"])
            started = time.monotonic()
            page = client.records(job["job_id"],
                                  wait_seq=tiny_spec().n_runs + 10,
                                  wait_timeout=30)
            assert time.monotonic() - started < 5.0
            assert page["resting"] and page["state"] == "done"
            assert page["seq"] == tiny_spec().n_runs
        finally:
            service.shutdown(timeout=30)

    def test_wait_seq_over_http(self, tmp_path):
        service = SweepService(str(tmp_path)).start()
        http = ServiceHTTPServer(service).start()
        try:
            client = ServiceClient(http.url)
            job = client.submit(tiny_spec(), job_key="h")
            page = client.records(job["job_id"], wait_seq=0, wait_timeout=30)
            assert page["seq"] >= 1
        finally:
            http.stop()
            service.shutdown(timeout=30)


class TestRegistryEventOrderProperty:
    """Satellite: randomized interleavings of multi-job lifecycle events
    never reach an illegal state and never lose (or fork) a journal seq."""

    EVENTS = ("admit", "running", "checkpoint", "suspend", "resume",
              "cancel_request", "cancelled", "done", "failed")
    STATES = ("submitted", "admitted", "running", "suspended", "done",
              "failed", "cancelled")

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_interleaved_event_orders_stay_legal(self, tmp_path, seed):
        import random
        rng = random.Random(seed)
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        registry = JobRegistry.open(journal)
        job_ids = []
        for i in range(3):
            job, _ = registry.submit({"spec": i}, job_key=f"k{i}")
            job_ids.append(job.job_id)
        applied = rejected = 0
        for _ in range(200):
            event = rng.choice(self.EVENTS)
            job_id = rng.choice(job_ids)
            kwargs = {}
            if event == "checkpoint":
                kwargs = {"records_done": rng.randrange(10)}
            elif event == "suspend":
                kwargs = {"reason": "prop"}
            elif event == "failed":
                kwargs = {"error": "prop"}
            before = journal._seq
            try:
                registry.transition(event, job_id, **kwargs)
                applied += 1
            except JobStateError:
                rejected += 1
                # A rejected event must leave no journal trace.
                assert journal._seq == before
            state = registry.get(job_id).state
            assert state in self.STATES
        assert applied and rejected        # the mix exercised both paths
        journal.close()
        # Replay reconstructs the exact same job table...
        replayed = JobRegistry.open(JobJournal(path))
        for job_id in job_ids:
            live, back = registry.get(job_id), replayed.get(job_id)
            assert live.state == back.state
            assert live.records_done == back.records_done
            assert live.suspensions == back.suspensions
            assert live.suspend_reason == back.suspend_reason
            assert live.cancel_requested == back.cancel_requested
        # ...and the journal has a gapless, strictly increasing seq chain.
        seqs = [e["seq"] for e in journal_events(str(tmp_path))]
        assert seqs == list(range(1, len(seqs) + 1))


# --------------------------------------------------------------------- #
# multi-job daemon chaos: kill -9 with two concurrent jobs
# --------------------------------------------------------------------- #
def _multi_daemon_once(data_dir, spec_dicts, fault_dicts, job_keys):
    faults.disarm_faults()
    if fault_dicts:
        faults.arm_faults(*[FaultSpec(**f) for f in fault_dicts])
    service = SweepService(data_dir, checkpoint_every=1,
                           attach_store=False).start()
    job_ids = [service.submit(spec, job_key=key)[0].job_id
               for spec, key in zip(spec_dicts, job_keys)]
    for job_id in job_ids:
        service.wait_for(job_id, timeout=120)
    service.shutdown(timeout=60)
    os._exit(0)


def run_multi_daemon_once(data_dir, specs, fault_dicts=(),
                          job_keys=("chaos-a", "chaos-b")) -> int:
    context = multiprocessing.get_context("fork")
    child = context.Process(
        target=_multi_daemon_once,
        args=(data_dir, [s.to_json_dict() for s in specs],
              list(fault_dicts), list(job_keys)))
    child.start()
    child.join(timeout=180)
    if child.is_alive():                      # pragma: no cover - deadline
        child.kill()
        child.join()
        pytest.fail("daemon child did not exit within the deadline")
    return child.exitcode


MULTI_KILL_SITES = [
    pytest.param({"kind": "daemon_kill", "match": "daemon:post_checkpoint"},
                 id="between-checkpoint-and-journal-commit"),
    pytest.param({"kind": "journal_torn", "match": "#checkpoint"},
                 id="mid-journal-append-torn",
                 marks=pytest.mark.skipif(not CHAOS_EXTENDED,
                                          reason="REPRO_CHAOS=1 only")),
    pytest.param({"kind": "daemon_kill", "match": "registry:done"},
                 id="after-done-append",
                 marks=pytest.mark.skipif(not CHAOS_EXTENDED,
                                          reason="REPRO_CHAOS=1 only")),
]


class TestMultiJobDaemonChaos:
    @pytest.mark.parametrize("fault", MULTI_KILL_SITES)
    def test_kill_restart_completes_both_jobs_bit_identical(
            self, tmp_path, baseline, fault):
        data_dir = str(tmp_path / "svc")
        specs = [tiny_spec(), tiny_spec(name="t2", master_seed=13)]
        first = run_multi_daemon_once(data_dir, specs, [fault])
        assert first == KILL_EXIT_CODE, \
            f"fault {fault} never fired (exit {first})"
        second = run_multi_daemon_once(data_dir, specs, [])
        assert second == 0
        registry = JobRegistry.open(
            JobJournal(os.path.join(data_dir, "journal.jsonl")))
        baselines = {
            "chaos-a": baseline,
            "chaos-b": SweepRunner(specs[1], SerialExecutor()).run(),
        }
        for key, expected in baselines.items():
            job = registry.find_by_key(key)
            assert job is not None and job.state == "done"
            stored = service_records(data_dir, job.job_id)
            assert records_as_dicts(stored) == records_as_dicts(expected)

    def test_disk_full_daemon_survives_in_one_pass(self, tmp_path, baseline):
        """ENOSPC during journaled checkpoints must not crash the child:
        both jobs finish in a single daemon pass (exit 0, no restart)."""
        data_dir = str(tmp_path / "svc")
        specs = [tiny_spec(), tiny_spec(name="t2", master_seed=13)]
        fault = {"kind": "disk_full", "match": "journal:checkpoint",
                 "times": 3}
        assert run_multi_daemon_once(data_dir, specs, [fault]) == 0
        registry = JobRegistry.open(
            JobJournal(os.path.join(data_dir, "journal.jsonl")))
        for key in ("chaos-a", "chaos-b"):
            job = registry.find_by_key(key)
            assert job is not None and job.state == "done"
        stored = service_records(data_dir,
                                 registry.find_by_key("chaos-a").job_id)
        assert records_as_dicts(stored) == records_as_dicts(baseline)
