"""Tests for the cross-worker shared physics store.

Lifecycle (attach/detach/auto-cleanup), value roundtrips as read-only views,
stale-index rejection, key-shareability filtering, concurrent readers, and
the end-to-end contract: a pool sweep with ``shared_cache_dir`` produces
records bit-identical to the private-cache run while actually sharing
entries across workers.
"""

import json
import os

import numpy as np
import pytest

from repro.power.vf_table import VFPair
from repro.sim import (
    RuntimeConfig,
    attach_shared_store,
    clear_level_cache,
    detach_shared_store,
    level_cache_stats,
    simulate,
)
from repro.sim.level_cache import ByteBudgetCache, LEVEL_CACHE, LevelEntry
from repro.sim.shared_store import SharedPhysicsStore, shareable_key
from repro.sweep import (
    PoolExecutor,
    SerialExecutor,
    SweepRunner,
    SweepSpec,
    WorkloadSpec,
    build_compiled_workload,
)


@pytest.fixture
def fresh_cache():
    """Isolate the process-level cache and detach any store around a test."""
    clear_level_cache()
    detach_shared_store()
    yield
    clear_level_cache()
    detach_shared_store()


def sample_entry(members=3, cycles=50, seed=0):
    rng = np.random.default_rng(seed)
    drop = rng.random((members, cycles))
    drop.setflags(write=False)
    fail_cycles = [np.flatnonzero(rng.random(cycles) < 0.2)
                   for _ in range(members)]
    return LevelEntry(pair=VFPair(level=40, voltage=0.68, frequency=1.1e9),
                      drop_rows=drop, fail_cycles=fail_cycles)


SPEC_KEY = ("spec", "w|fingerprint")


def level_key(tag="a"):
    return ((SPEC_KEY, 400, 0.6, 0.15, 0.7, 0.003, 1, 0.5), 0, 40, 0.68, tag)


class TestShareableKeys:
    def test_spec_fingerprints_share(self):
        assert shareable_key(level_key())

    def test_token_and_unshared_markers_refused(self):
        assert not shareable_key((("token", 3), 0, 40))
        assert not shareable_key((("unshared", 1), 0))
        assert not shareable_key(((("token", 0), 17), "x"))

    def test_non_primitives_refused(self):
        assert not shareable_key((object(), 1))


class TestStoreRoundtrip:
    def test_level_entry_roundtrip_readonly(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        entry = sample_entry()
        assert store.store(level_key(), entry, 1000)

        other = SharedPhysicsStore(str(tmp_path))
        loaded = other.load(level_key())
        assert loaded is not None
        value, nbytes = loaded
        assert nbytes > 0
        assert value.pair == entry.pair
        assert np.array_equal(value.drop_rows, entry.drop_rows)
        assert len(value.fail_cycles) == len(entry.fail_cycles)
        for got, want in zip(value.fail_cycles, entry.fail_cycles):
            assert np.array_equal(got, want)
        assert value.fail_lists == entry.fail_lists
        # Attached arrays are read-only views of the mapped file.
        assert not value.drop_rows.flags.writeable
        with pytest.raises(ValueError):
            value.drop_rows[0, 0] = 1.0

    def test_activity_dict_roundtrip(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        rng = np.random.default_rng(1)
        activity = {3: rng.random(64), 11: rng.random(64)}
        key = ("activity", SPEC_KEY, 64, 0.6, 0.15, 0.7, 1, 0.5)
        assert store.store(key, activity, 1024)
        value, _ = SharedPhysicsStore(str(tmp_path)).load(key)
        assert sorted(value) == [3, 11]
        for macro in activity:
            assert np.array_equal(value[macro], activity[macro])
        assert not value[3].flags.writeable

    def test_store_is_idempotent(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        entry = sample_entry()
        assert store.store(level_key(), entry, 1000)
        assert store.store(level_key(), entry, 1000)
        assert store.stats()["entries"] == 1

    def test_unshareable_key_not_stored(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        key = ((("token", 1), 400), 0, 40, 0.68, "a")
        assert not store.store(key, sample_entry(), 1000)
        assert store.load(key) is None
        assert store.stats()["entries"] == 0
        assert store.rejected_keys == 1

    def test_unknown_value_kind_declined(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        assert not store.store(level_key(), {"not": "physics"}, 10)

    def test_miss_on_absent_key(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        assert store.load(level_key("missing")) is None

    def test_concurrent_readers_share_one_file(self, tmp_path):
        """Two attached stores map the same published bytes."""
        writer = SharedPhysicsStore(str(tmp_path))
        writer.store(level_key(), sample_entry(seed=5), 1000)
        readers = [SharedPhysicsStore(str(tmp_path)) for _ in range(2)]
        values = [r.load(level_key())[0] for r in readers]
        assert np.array_equal(values[0].drop_rows, values[1].drop_rows)
        # Same backing file on disk — one physical copy for the fleet.
        bins = [f for f in os.listdir(tmp_path) if f.endswith(".bin")]
        assert len(bins) == 1

    def test_index_visible_to_earlier_attachers(self, tmp_path):
        """A store attached before a sibling published still sees the entry
        (mtime-based index refresh)."""
        early = SharedPhysicsStore(str(tmp_path))
        assert early.load(level_key()) is None
        SharedPhysicsStore(str(tmp_path)).store(level_key(),
                                                sample_entry(), 1000)
        assert early.load(level_key()) is not None


class TestStaleIndexRejection:
    def test_truncated_data_file_rejected(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        store.store(level_key(), sample_entry(), 1000)
        [bin_name] = [f for f in os.listdir(tmp_path) if f.endswith(".bin")]
        with open(tmp_path / bin_name, "r+b") as handle:
            handle.truncate(8)
        reader = SharedPhysicsStore(str(tmp_path))
        assert reader.load(level_key()) is None
        assert reader.stale_rejected == 1

    def test_missing_data_file_rejected(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        store.store(level_key(), sample_entry(), 1000)
        [bin_name] = [f for f in os.listdir(tmp_path) if f.endswith(".bin")]
        os.unlink(tmp_path / bin_name)
        reader = SharedPhysicsStore(str(tmp_path))
        assert reader.load(level_key()) is None
        assert reader.stale_rejected == 1

    def test_stale_entry_can_be_republished(self, tmp_path):
        """A digest whose data file vanished must not block re-publication
        just because the disk index still lists it."""
        store = SharedPhysicsStore(str(tmp_path))
        store.store(level_key(), sample_entry(), 1000)
        [bin_name] = [f for f in os.listdir(tmp_path) if f.endswith(".bin")]
        os.unlink(tmp_path / bin_name)
        healer = SharedPhysicsStore(str(tmp_path))    # fresh index snapshot
        assert healer.load(level_key()) is None       # stale-rejected
        assert healer.store(level_key(), sample_entry(), 1000)
        assert healer.stores == 1                     # actually rewritten
        assert SharedPhysicsStore(str(tmp_path)).load(level_key()) is not None

    def test_unknown_format_version_ignored(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        store.store(level_key(), sample_entry(), 1000)
        index = json.loads((tmp_path / "index.json").read_text())
        index["version"] = 999
        (tmp_path / "index.json").write_text(json.dumps(index))
        assert SharedPhysicsStore(str(tmp_path)).load(level_key()) is None


class TestByteBudgetCacheBackend:
    def test_rejected_counter_counts_oversized_puts(self):
        cache = ByteBudgetCache(100)
        cache.put("small", "v", 10)
        cache.put("big", "v", 1000)
        stats = cache.stats()
        assert stats["rejected"] == 1
        assert stats["entries"] == 1
        cache.clear()
        assert cache.stats()["rejected"] == 0

    def test_zero_budget_counts_every_put_as_rejected(self):
        cache = ByteBudgetCache(0)
        cache.put("a", "v", 1)
        assert cache.stats()["rejected"] == 1

    def test_backend_hit_promotes_into_memory(self, tmp_path):
        backend = SharedPhysicsStore(str(tmp_path))
        backend.store(level_key(), sample_entry(), 1000)
        cache = ByteBudgetCache(1 << 20, backend=backend)
        assert cache.get(level_key()) is not None
        stats = cache.stats()
        assert stats["backend_hits"] == 1 and stats["misses"] == 0
        # Second get is a pure in-memory hit.
        assert cache.get(level_key()) is not None
        assert cache.stats()["hits"] == 1
        assert "backend" in stats

    def test_puts_flow_through_to_backend(self, tmp_path):
        backend = SharedPhysicsStore(str(tmp_path))
        cache = ByteBudgetCache(1 << 20, backend=backend)
        cache.put(level_key(), sample_entry(), 1000)
        assert backend.stats()["entries"] == 1


def store_workload(label="store-w"):
    return WorkloadSpec(builder="synthetic", groups=4, macros_per_group=2,
                        banks=4, rows=8, operator_rows=16, n_operators=4,
                        code_spread=30.0, mapping="sequential", label=label)


class TestLevelCacheIntegration:
    def test_attach_detach_lifecycle(self, fresh_cache, tmp_path):
        store = attach_shared_store(str(tmp_path))
        assert LEVEL_CACHE.backend is store
        assert "backend" in level_cache_stats()
        detach_shared_store()
        assert LEVEL_CACHE.backend is None
        assert "backend" not in level_cache_stats()

    def test_cross_process_reuse_is_bit_identical(self, fresh_cache, tmp_path):
        """Simulate a worker handoff: populate the store, wipe the in-memory
        cache (a fresh process), rerun — backend hits, identical results."""
        compiled = build_compiled_workload(store_workload())
        config = dict(cycles=400, controller="booster", beta=6,
                      flip_mean=0.8, monitor_noise=0.01, seed=2)
        attach_shared_store(str(tmp_path))
        first = simulate(compiled, RuntimeConfig(**config))
        clear_level_cache()                    # memory gone, disk remains
        second = simulate(compiled, RuntimeConfig(**config))
        assert level_cache_stats()["backend_hits"] > 0
        detach_shared_store()
        clear_level_cache()
        private = simulate(compiled, RuntimeConfig(**config))
        for warm in (first, second):
            assert warm.total_failures == private.total_failures
            assert warm.total_stall_cycles == private.total_stall_cycles
            for a, b in zip(warm.macro_results, private.macro_results):
                assert np.array_equal(a.drop_trace, b.drop_trace)
                assert a.failures == b.failures
            for a, b in zip(warm.group_results, private.group_results):
                assert np.array_equal(a.level_trace, b.level_trace)

    def test_zero_budget_bypasses_backend(self, fresh_cache, tmp_path):
        """``set_level_cache_budget(0)`` means *cold*: an attached store
        must neither serve nor receive entries, so cache-disabled timing
        runs stay honest inside store-attached workers."""
        from repro.sim import set_level_cache_budget
        compiled = build_compiled_workload(store_workload("store-cold"))
        config = RuntimeConfig(cycles=200, controller="booster", seed=0)
        store = attach_shared_store(str(tmp_path))
        simulate(compiled, config)             # populate the store
        assert store.stats()["entries"] > 0
        clear_level_cache()
        loads_before = store.loads
        old_budget = set_level_cache_budget(0)
        try:
            simulate(compiled, config)
            stats = level_cache_stats()
            assert stats["backend_hits"] == 0
            assert stats["entries"] == 0
            assert store.loads == loads_before    # backend never consulted
        finally:
            set_level_cache_budget(old_budget)
        simulate(compiled, config)             # re-enabled: served from disk
        assert level_cache_stats()["backend_hits"] > 0

    def test_store_io_failure_degrades_to_recompute(self, fresh_cache,
                                                    tmp_path):
        """Losing the store directory mid-sweep must not crash a run —
        the backend is best-effort by contract."""
        import shutil
        compiled = build_compiled_workload(store_workload("store-gone"))
        config = RuntimeConfig(cycles=200, controller="booster", seed=0)
        attach_shared_store(str(tmp_path / "volatile"))
        baseline = simulate(compiled, config)
        shutil.rmtree(tmp_path / "volatile")   # operator cleanup mid-run
        clear_level_cache()
        survived = simulate(compiled, config)  # must not raise
        assert survived.total_failures == baseline.total_failures
        for a, b in zip(baseline.macro_results, survived.macro_results):
            assert np.array_equal(a.drop_trace, b.drop_trace)

    def test_adhoc_workloads_share_by_content(self, fresh_cache, tmp_path):
        """Compiled images without a builder fingerprint derive a
        content-derived identity the store accepts: their physics publishes,
        and a content-identical rebuild maps to the same shareable keys."""
        from repro.sim.level_cache import workload_cache_key
        compiled = build_compiled_workload(store_workload("store-token"))
        adhoc = type(compiled)(**{
            f: getattr(compiled, f) for f in compiled.__dataclass_fields__})
        assert getattr(adhoc, "cache_key", None) is None
        store = attach_shared_store(str(tmp_path))
        simulate(adhoc, RuntimeConfig(cycles=200, controller="booster",
                                      seed=0))
        assert store.stats()["entries"] > 0
        assert store.rejected_keys == 0
        # A second, independently constructed content-identical image hashes
        # to the same ("content", ...) identity — the cross-process pattern.
        rebuilt = type(compiled)(**{
            f: getattr(compiled, f) for f in compiled.__dataclass_fields__})
        key = workload_cache_key(rebuilt)
        assert key[0] == "content"
        assert key == workload_cache_key(adhoc)
        assert shareable_key(key)

    def test_undigestible_workloads_never_cross_processes(
            self, fresh_cache, tmp_path, monkeypatch):
        """When no content digest can be derived the key falls back to a
        process-local token — the store must refuse it."""
        from repro.sim import level_cache as level_cache_module

        def refuse(compiled):
            raise TypeError("undigestible")

        monkeypatch.setattr(level_cache_module, "content_fingerprint", refuse)
        compiled = build_compiled_workload(store_workload("store-token2"))
        compiled = type(compiled)(**{
            f: getattr(compiled, f) for f in compiled.__dataclass_fields__})
        assert getattr(compiled, "cache_key", None) is None
        store = attach_shared_store(str(tmp_path))
        simulate(compiled, RuntimeConfig(cycles=200, controller="booster",
                                         seed=0))
        assert store.stats()["entries"] == 0
        assert store.rejected_keys > 0


class TestPoolExecutorSharedStore:
    def sweep_spec(self):
        return SweepSpec(
            name="store-sweep", workloads=(store_workload("store-pool"),),
            controllers=("booster",), modes=("low_power",), betas=(5, 9),
            cycles=300, flip_means=(0.8,), monitor_noises=(0.01,), seeds=2,
            master_seed=0, seed_mode="shared")

    def test_shared_dir_records_match_serial(self, fresh_cache, tmp_path):
        spec = self.sweep_spec()
        serial = SweepRunner(spec, SerialExecutor()).run()
        clear_level_cache()
        executor = PoolExecutor(processes=2, shared_cache_dir=str(tmp_path))
        pool = SweepRunner(spec, executor).run()
        assert [r.to_json_dict() for r in serial.sorted_records()] == \
            [r.to_json_dict() for r in pool.sorted_records()]
        store = SharedPhysicsStore(str(tmp_path))
        assert store.stats()["entries"] > 0
        # A second fleet over the same store must reuse the first fleet's
        # entries (fresh worker pids — cross-worker by construction) and
        # still reproduce the records bit for bit.
        clear_level_cache()
        again = SweepRunner(spec, executor).run()
        assert [r.to_json_dict() for r in pool.sorted_records()] == \
            [r.to_json_dict() for r in again.sorted_records()]
        assert store.cross_worker_hits() > 0

    def test_auto_dir_is_cleaned_up(self, fresh_cache, tmp_path,
                                    monkeypatch):
        import tempfile as _tempfile
        created = []
        real_mkdtemp = _tempfile.mkdtemp

        def tracking_mkdtemp(*args, **kwargs):
            kwargs.setdefault("dir", str(tmp_path))
            path = real_mkdtemp(*args, **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr("repro.sweep.runner.tempfile",
                            type("T", (), {"mkdtemp": tracking_mkdtemp}))
        spec = self.sweep_spec()
        SweepRunner(spec, PoolExecutor(processes=2,
                                       shared_cache_dir="auto")).run()
        assert len(created) == 1
        assert not os.path.exists(created[0])

    def test_explicit_dir_left_in_place(self, fresh_cache, tmp_path):
        spec = self.sweep_spec()
        target = tmp_path / "physics"
        SweepRunner(spec, PoolExecutor(
            processes=2, shared_cache_dir=str(target))).run()
        assert target.is_dir()
        assert SharedPhysicsStore(str(target)).stats()["entries"] > 0

    def test_events_can_be_disabled(self, fresh_cache, tmp_path):
        spec = self.sweep_spec()
        SweepRunner(spec, PoolExecutor(
            processes=2, shared_cache_dir=str(tmp_path),
            shared_cache_events=False)).run()
        assert SharedPhysicsStore(str(tmp_path)).stats()["entries"] > 0
        assert not (tmp_path / "stats.jsonl").exists()


class TestStoreHardening:
    """Checksum quarantine, swallowed-error counters, lock timeouts and
    graceful degradation — the store half of the fault-tolerance layer."""

    def bin_path(self, directory):
        names = [n for n in os.listdir(directory) if n.endswith(".bin")]
        assert len(names) == 1
        return os.path.join(directory, names[0])

    def test_corrupt_entry_quarantined_and_republishable(self, tmp_path):
        writer = SharedPhysicsStore(str(tmp_path))
        entry = sample_entry()
        assert writer.store(level_key(), entry, 1000)
        path = self.bin_path(str(tmp_path))
        with open(path, "r+b") as handle:
            handle.seek(os.path.getsize(path) // 2)
            handle.write(b"\xff")

        reader = SharedPhysicsStore(str(tmp_path))    # no verification memo
        assert reader.load(level_key()) is None       # corruption -> miss
        assert reader.stats()["corrupt_rejected"] == 1
        assert os.path.exists(path + ".corrupt")      # post-mortem evidence
        # Recovery is miss + republish: the slot is free again.
        assert reader.store(level_key(), entry, 1000)
        value, _ = SharedPhysicsStore(str(tmp_path)).load(level_key())
        assert np.array_equal(value.drop_rows, entry.drop_rows)

    def test_verification_memoized_per_process(self, tmp_path):
        writer = SharedPhysicsStore(str(tmp_path))
        entry = sample_entry()
        assert writer.store(level_key(), entry, 1000)
        reader = SharedPhysicsStore(str(tmp_path))
        assert reader.load(level_key()) is not None
        assert len(reader._verified) == 1
        # Subsequent loads skip the hash; a fresh instance re-verifies.
        assert reader.load(level_key()) is not None
        assert SharedPhysicsStore(str(tmp_path))._verified == set()

    def test_event_log_errors_counted(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        os.makedirs(str(tmp_path / "stats.jsonl"))    # appends now raise
        assert store.store(level_key(), sample_entry(), 1000)
        assert store.stats()["event_log_errors"] >= 1

    def test_load_errors_counted_for_corrupt_index_record(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        assert store.store(level_key(), sample_entry(), 1000)
        digest = next(iter(store._index))
        store._index[digest]["arrays"][0]["dtype"] = "not-a-dtype"
        assert store.load(level_key()) is None
        assert store.stats()["load_errors"] == 1

    def test_lock_timeout_degrades_store(self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        store = SharedPhysicsStore(str(tmp_path), lock_timeout=0.2)
        holder = open(str(tmp_path / ".lock"), "a")
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)   # flock is per-open-fd
        try:
            assert not store.store(level_key(), sample_entry(), 1000)
            stats = store.stats()
            assert stats["lock_timeouts"] == 1
            assert stats["store_errors"] == 1
        finally:
            holder.close()
        # Holder gone: publication works again.
        assert store.store(level_key(), sample_entry(), 1000)

    def test_unusable_directory_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        store = SharedPhysicsStore(str(blocker / "sub"))
        assert store.degraded
        assert store.load(level_key()) is None
        assert not store.store(level_key(), sample_entry(), 1000)
        assert store.stats()["degraded"]
        assert store.stats()["store_errors"] == 1

    def test_checksum_recorded_on_publish(self, tmp_path):
        store = SharedPhysicsStore(str(tmp_path))
        assert store.store(level_key(), sample_entry(), 1000)
        record = next(iter(store._read_index().values()))
        import hashlib
        blob = open(os.path.join(str(tmp_path), record["file"]), "rb").read()
        assert record["sha256"] == hashlib.sha256(blob).hexdigest()
