"""Equivalence and unit tests for the vectorized simulation engine.

The vectorized engine (``repro.sim.engine``) must reproduce the reference
cycle-by-cycle loop bit-for-bit: identical failures, stalls, level traces,
drop traces and chip traces, with energy equal up to floating-point summation
order.  These tests sweep all three controllers, both modes and several seeds,
plus stress settings (small beta, long recompute windows, zero noise) that
exercise the within-cycle stall-propagation corner cases.
"""

import numpy as np
import pytest

from repro.core.ir_booster import BoosterMode, IRBoosterController
from repro.pim.config import small_chip_config
from repro.power.energy import EnergyBreakdown, EnergyModel
from repro.power.monitor import IRMonitor
from repro.power.vf_table import VFTable
from repro.sim import (
    CompilerConfig,
    RuntimeConfig,
    compile_workload,
    simulate,
)
from repro.workloads import flip_factor_matrix, flip_factor_sequence
from repro.workloads.profiles import WorkloadProfile

from tests.helpers import make_operator


def assert_results_equivalent(reference, vectorized):
    """Exact equality on discrete outcomes, tight allclose on energy."""
    assert len(reference.macro_results) == len(vectorized.macro_results)
    for ref, vec in zip(reference.macro_results, vectorized.macro_results):
        assert ref.macro_index == vec.macro_index
        assert ref.failures == vec.failures
        assert ref.stall_cycles == vec.stall_cycles
        assert np.array_equal(ref.rtog_trace, vec.rtog_trace)
        assert np.array_equal(ref.drop_trace, vec.drop_trace)
        assert np.isclose(ref.energy.dynamic_energy, vec.energy.dynamic_energy,
                          rtol=1e-9)
        assert np.isclose(ref.energy.static_energy, vec.energy.static_energy,
                          rtol=1e-9)
        assert np.isclose(ref.energy.elapsed_time, vec.energy.elapsed_time,
                          rtol=1e-9)
        assert ref.energy.completed_macs == pytest.approx(vec.energy.completed_macs)
    assert len(reference.group_results) == len(vectorized.group_results)
    for ref, vec in zip(reference.group_results, vectorized.group_results):
        assert ref.group_id == vec.group_id
        assert ref.safe_level == vec.safe_level
        assert ref.final_level == vec.final_level
        assert ref.failures == vec.failures
        assert np.array_equal(ref.level_trace, vec.level_trace)
    assert np.array_equal(reference.chip_drop_trace, vectorized.chip_drop_trace)


@pytest.fixture(scope="module")
def engine_compiled():
    """A mixed workload on an 8-group chip (multi-macro logical sets)."""
    chip = small_chip_config(groups=8, macros_per_group=2, banks=4, rows=8)
    table = VFTable(nominal_voltage=chip.nominal_voltage,
                    nominal_frequency=chip.nominal_frequency,
                    signoff_ir_drop=chip.signoff_ir_drop)
    rows, cols = chip.macro.rows, chip.macro.banks
    operators = [
        make_operator("conv1", rows * 2, cols, kind="conv", seed=1),
        make_operator("conv2", rows * 2, cols, kind="conv", seed=2),
        make_operator("fc", rows * 2, cols, kind="linear", seed=3),
        make_operator("attn.qk_t", rows * 2, cols, kind="qk_t", seed=4, spread=40.0),
    ]
    profile = WorkloadProfile(name="engine-test", family="mixed", operators=operators)
    compiled = compile_workload(profile, chip, table,
                                CompilerConfig(mapping_strategy="sequential",
                                               max_tasks_per_operator=2))
    return compiled, table


class TestEngineEquivalence:
    @pytest.mark.parametrize("controller", ["dvfs", "booster_safe", "booster"])
    @pytest.mark.parametrize("mode", [BoosterMode.LOW_POWER, BoosterMode.SPRINT])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_engines_agree(self, engine_compiled, controller, mode, seed):
        compiled, table = engine_compiled
        kwargs = dict(cycles=400, controller=controller, mode=mode, seed=seed)
        reference = simulate(compiled, RuntimeConfig(engine="reference", **kwargs),
                             table=table)
        vectorized = simulate(compiled, RuntimeConfig(engine="vectorized", **kwargs),
                              table=table)
        assert_results_equivalent(reference, vectorized)

    def test_engines_agree_under_failure_pressure(self, engine_compiled):
        """Small beta + long recompute stalls: many overlapping Set stalls."""
        compiled, table = engine_compiled
        kwargs = dict(cycles=500, controller="booster", beta=10,
                      recompute_cycles=25, monitor_noise=0.006, seed=5)
        reference = simulate(compiled, RuntimeConfig(engine="reference", **kwargs),
                             table=table)
        vectorized = simulate(compiled, RuntimeConfig(engine="vectorized", **kwargs),
                              table=table)
        assert reference.total_failures > 0            # the stress must bite
        assert_results_equivalent(reference, vectorized)

    def test_engines_agree_without_noise(self, engine_compiled):
        compiled, table = engine_compiled
        for controller in ("dvfs", "booster_safe", "booster"):
            kwargs = dict(cycles=300, controller=controller, monitor_noise=0.0,
                          seed=2)
            reference = simulate(compiled, RuntimeConfig(engine="reference", **kwargs),
                                 table=table)
            vectorized = simulate(compiled, RuntimeConfig(engine="vectorized",
                                                          **kwargs), table=table)
            assert_results_equivalent(reference, vectorized)

    def test_engines_agree_zero_recompute(self, engine_compiled):
        compiled, table = engine_compiled
        kwargs = dict(cycles=300, controller="booster", recompute_cycles=0, seed=1)
        reference = simulate(compiled, RuntimeConfig(engine="reference", **kwargs),
                             table=table)
        vectorized = simulate(compiled, RuntimeConfig(engine="vectorized", **kwargs),
                              table=table)
        assert_results_equivalent(reference, vectorized)

    def test_vectorized_is_default_engine(self):
        assert RuntimeConfig().engine == "vectorized"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(engine="warp").validate()


class TestAdvanceNofail:
    def make_controller(self, beta=7):
        table = VFTable()
        controller = IRBoosterController(table, beta=beta)
        controller.configure_group(0, group_hr=0.42)
        return controller

    def clone_states(self, controller):
        state = controller.state(0)
        return (state.safe_level, state.a_level, state.level, state.safe_counter,
                state.failures, state.level_ups, state.level_downs)

    @pytest.mark.parametrize("spans", [
        [30], [1, 1, 1, 5], [100], [7, 14, 15, 16], [3, 40, 2, 60],
    ])
    def test_matches_stepwise_execution(self, spans):
        """advance_nofail == the same number of step() calls, at any phase."""
        fast = self.make_controller()
        slow = self.make_controller()
        for span in spans:
            transitions = fast.advance_nofail(0, span)
            observed = []
            for _ in range(span):
                slow.step(0, ir_failure=False)
                observed.append(slow.state(0).level)
            assert self.clone_states(fast) == self.clone_states(slow)
            # Every reported transition matches the stepwise level at the
            # same offset, and between transitions the level is constant.
            for offset, level in transitions:
                assert observed[offset - 1] == level
            # interleave a failure to shift the phase
            fast.step(0, ir_failure=True)
            slow.step(0, ir_failure=True)
            assert self.clone_states(fast) == self.clone_states(slow)

    def test_level_trace_reconstruction(self):
        """The transitions reconstruct the exact per-cycle level trace."""
        fast = self.make_controller(beta=5)
        slow = self.make_controller(beta=5)
        n = 60
        stepwise = []
        for _ in range(n):
            stepwise.append(slow.state(0).level)
            slow.step(0, ir_failure=False)
        trace = []
        level = fast.state(0).level
        transitions = fast.advance_nofail(0, n)
        breaks = {offset: lvl for offset, lvl in transitions}
        for cycle in range(n):
            if cycle in breaks:
                level = breaks[cycle]
            trace.append(level)
        assert trace == stepwise

    def test_zero_steps_is_noop(self):
        controller = self.make_controller()
        before = self.clone_states(controller)
        assert controller.advance_nofail(0, 0) == []
        assert self.clone_states(controller) == before


class TestBatchedPrimitives:
    def test_flip_factor_matrix_matches_sequence(self):
        seeds = [17, 34, 51, 9]
        matrix = flip_factor_matrix(seeds, 256, mean=0.55, std=0.2,
                                    correlation=0.8)
        assert matrix.shape == (4, 256)
        for i, seed in enumerate(seeds):
            row = flip_factor_sequence(256, mean=0.55, std=0.2, correlation=0.8,
                                       seed=seed)
            assert np.array_equal(matrix[i], row)

    def test_flip_factor_matrix_cached_and_readonly(self):
        a = flip_factor_matrix([1, 2], 64)
        b = flip_factor_matrix([1, 2], 64)
        assert a is b
        with pytest.raises(ValueError):
            a[0, 0] = 0.5

    def test_monitor_noise_is_cycle_indexed(self):
        sequential = IRMonitor(sensing_noise=0.01, seed=42)
        skipping = IRMonitor(sensing_noise=0.01, seed=42)
        dense = [sequential.noise_at(c) for c in range(20)]
        # Sampling only every third cycle must see the same per-cycle values.
        sparse = {c: skipping.noise_at(c) for c in range(0, 20, 3)}
        for cycle, value in sparse.items():
            assert value == dense[cycle]

    def test_monitor_batch_matches_scalar_sampling(self):
        scalar = IRMonitor(sensing_noise=0.01, seed=7)
        batch = IRMonitor(sensing_noise=0.01, seed=7, record_readings=False)
        rng = np.random.default_rng(0)
        effective = 0.65 + rng.normal(0.0, 0.01, size=200)
        expected = np.array([scalar.sample(c, float(effective[c]), 0.65)
                             for c in range(200)])
        observed = batch.sample_batch(0, effective, 0.65)
        assert np.array_equal(expected, observed)
        assert batch.failure_count == scalar.failure_count
        assert batch.readings == []                      # recording disabled
        assert len(scalar.readings) == 200

    def test_monitor_reading_cap(self):
        monitor = IRMonitor(sensing_noise=0.0, max_readings=10)
        for cycle in range(50):
            monitor.sample(cycle, 0.7, 0.65)
        assert len(monitor.readings) == 10
        assert monitor.readings[-1].cycle == 49
        assert monitor.failure_count == 0                # counters still global

    def test_accumulate_cycles_matches_scalar(self):
        model = EnergyModel()
        rng = np.random.default_rng(3)
        activity = rng.uniform(0.1, 0.9, size=300)
        stalled = rng.random(300) < 0.2
        scalar = EnergyBreakdown()
        for act, stall in zip(activity, stalled):
            model.accumulate_cycle(scalar, 0.71, 0.9e9, float(act), 2.5,
                                   stalled=bool(stall))
        batched = EnergyBreakdown()
        model.accumulate_cycles(batched, 0.71, 0.9e9, activity, 2.5,
                                stalled=stalled)
        traced = EnergyBreakdown()
        model.accumulate_trace(traced, np.full(300, 0.71), np.full(300, 0.9e9),
                               activity, 2.5, stalled=stalled)
        for result in (batched, traced):
            assert result.dynamic_energy == pytest.approx(scalar.dynamic_energy)
            assert result.static_energy == pytest.approx(scalar.static_energy)
            assert result.elapsed_time == pytest.approx(scalar.elapsed_time)
            assert result.completed_macs == pytest.approx(scalar.completed_macs)
