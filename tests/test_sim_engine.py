"""Equivalence and unit tests for the vectorized simulation engine.

The vectorized engine (``repro.sim.engine``) must reproduce the reference
cycle-by-cycle loop bit-for-bit: identical failures, stalls, level traces,
drop traces and chip traces, with energy equal up to floating-point summation
order.  These tests sweep all three controllers, both modes and several seeds,
plus stress settings (small beta, long recompute windows, zero noise) that
exercise the within-cycle stall-propagation corner cases.
"""

import numpy as np
import pytest

from repro.core.ir_booster import BoosterMode, IRBoosterController
from repro.pim.config import small_chip_config
from repro.power.energy import EnergyBreakdown, EnergyModel
from repro.power.monitor import IRMonitor
from repro.power.vf_table import VFTable
from repro.sim import (
    CompilerConfig,
    RuntimeConfig,
    PIMRuntime,
    clear_level_cache,
    compile_workload,
    level_cache_stats,
    set_level_cache_budget,
    simulate,
)
from repro.sim.engine import _VectorizedEngine, run_vectorized
from repro.sweep import WorkloadSpec, build_compiled_workload
from repro.workloads import flip_factor_matrix, flip_factor_sequence
from repro.workloads.profiles import WorkloadProfile

from tests.helpers import (
    FAILURE_DENSE_STRESS,
    assert_results_equivalent,
    make_operator,
    synthetic_spec,
)


@pytest.fixture(scope="module")
def engine_compiled():
    """A mixed workload on an 8-group chip (multi-macro logical sets)."""
    chip = small_chip_config(groups=8, macros_per_group=2, banks=4, rows=8)
    table = VFTable(nominal_voltage=chip.nominal_voltage,
                    nominal_frequency=chip.nominal_frequency,
                    signoff_ir_drop=chip.signoff_ir_drop)
    rows, cols = chip.macro.rows, chip.macro.banks
    operators = [
        make_operator("conv1", rows * 2, cols, kind="conv", seed=1),
        make_operator("conv2", rows * 2, cols, kind="conv", seed=2),
        make_operator("fc", rows * 2, cols, kind="linear", seed=3),
        make_operator("attn.qk_t", rows * 2, cols, kind="qk_t", seed=4, spread=40.0),
    ]
    profile = WorkloadProfile(name="engine-test", family="mixed", operators=operators)
    compiled = compile_workload(profile, chip, table,
                                CompilerConfig(mapping_strategy="sequential",
                                               max_tasks_per_operator=2))
    return compiled, table


class TestEngineEquivalence:
    @pytest.mark.parametrize("controller", ["dvfs", "booster_safe", "booster"])
    @pytest.mark.parametrize("mode", [BoosterMode.LOW_POWER, BoosterMode.SPRINT])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_engines_agree(self, engine_compiled, controller, mode, seed):
        compiled, table = engine_compiled
        kwargs = dict(cycles=400, controller=controller, mode=mode, seed=seed)
        reference = simulate(compiled, RuntimeConfig(engine="reference", **kwargs),
                             table=table)
        vectorized = simulate(compiled, RuntimeConfig(engine="vectorized", **kwargs),
                              table=table)
        assert_results_equivalent(reference, vectorized)

    def test_engines_agree_under_failure_pressure(self, engine_compiled):
        """Small beta + long recompute stalls: many overlapping Set stalls."""
        compiled, table = engine_compiled
        kwargs = dict(cycles=500, controller="booster", beta=10,
                      recompute_cycles=25, monitor_noise=0.006, seed=5)
        reference = simulate(compiled, RuntimeConfig(engine="reference", **kwargs),
                             table=table)
        vectorized = simulate(compiled, RuntimeConfig(engine="vectorized", **kwargs),
                              table=table)
        assert reference.total_failures > 0            # the stress must bite
        assert_results_equivalent(reference, vectorized)

    def test_engines_agree_without_noise(self, engine_compiled):
        compiled, table = engine_compiled
        for controller in ("dvfs", "booster_safe", "booster"):
            kwargs = dict(cycles=300, controller=controller, monitor_noise=0.0,
                          seed=2)
            reference = simulate(compiled, RuntimeConfig(engine="reference", **kwargs),
                                 table=table)
            vectorized = simulate(compiled, RuntimeConfig(engine="vectorized",
                                                          **kwargs), table=table)
            assert_results_equivalent(reference, vectorized)

    def test_engines_agree_zero_recompute(self, engine_compiled):
        compiled, table = engine_compiled
        kwargs = dict(cycles=300, controller="booster", recompute_cycles=0, seed=1)
        reference = simulate(compiled, RuntimeConfig(engine="reference", **kwargs),
                             table=table)
        vectorized = simulate(compiled, RuntimeConfig(engine="vectorized", **kwargs),
                              table=table)
        assert_results_equivalent(reference, vectorized)

    def test_vectorized_is_default_engine(self):
        assert RuntimeConfig().engine == "vectorized"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(engine="warp").validate()


def run_unbatched(compiled, config, table=None):
    """The pre-batching event loop (the batched path's measured baseline)."""
    return run_vectorized(PIMRuntime(compiled, config, table=table),
                          batched=False)


def coupling_of(compiled, config, table=None):
    """(independent, coupled) group counts the engine derives for a workload."""
    engine = _VectorizedEngine(PIMRuntime(compiled, config, table=table))
    engine._setup()
    return len(engine.independent_groups), len(engine.coupled_groups)


class TestFailureDenseEquivalence:
    """Forced high-failure-density configs: batched and pre-batching event
    loops must both reproduce the reference oracle bit-for-bit, across the
    independent-group (batched per-group runs) and coupled-group (heap
    scheduler) code paths."""

    STRESS = FAILURE_DENSE_STRESS

    def triangulate(self, compiled, table=None, **kwargs):
        reference = simulate(compiled, RuntimeConfig(engine="reference", **kwargs),
                             table=table)
        batched = simulate(compiled, RuntimeConfig(engine="vectorized", **kwargs),
                           table=table)
        unbatched = run_unbatched(compiled, RuntimeConfig(**kwargs), table=table)
        assert_results_equivalent(reference, batched)
        assert_results_equivalent(reference, unbatched)
        return reference

    def test_high_density_mixed_sets(self, engine_compiled):
        compiled, table = engine_compiled
        result = self.triangulate(compiled, table=table, cycles=600, **self.STRESS)
        assert result.total_failures > 100          # the stress must bite

    def test_high_density_zero_recompute(self, engine_compiled):
        compiled, table = engine_compiled
        kwargs = dict(self.STRESS, recompute_cycles=0)
        result = self.triangulate(compiled, table=table, cycles=500, **kwargs)
        assert result.total_failures > 100
        assert result.total_stall_cycles == 0

    def test_high_density_booster_safe(self, engine_compiled):
        compiled, table = engine_compiled
        kwargs = dict(self.STRESS, controller="booster_safe")
        self.triangulate(compiled, table=table, cycles=500, **kwargs)

    def test_independent_groups_take_batched_path(self):
        """Group-contained Sets (sequential mapping, even tiling): every group
        is processed by the batched per-group runner."""
        compiled = build_compiled_workload(synthetic_spec("engine-independent"))
        kwargs = dict(cycles=700, **self.STRESS)
        independent, coupled = coupling_of(compiled, RuntimeConfig(**kwargs))
        assert coupled == 0 and independent > 0
        result = self.triangulate(compiled, **kwargs)
        assert result.total_failures > 100

    def test_straddling_sets_take_heap_path(self):
        """Two-macro Sets over three-macro groups straddle group boundaries,
        forcing the coupled-group heap scheduler (cross-group stalls)."""
        compiled = build_compiled_workload(
            synthetic_spec("engine-straddle", macros_per_group=3,
                           n_operators=9))
        kwargs = dict(cycles=700, **self.STRESS)
        independent, coupled = coupling_of(compiled, RuntimeConfig(**kwargs))
        assert coupled > 0
        result = self.triangulate(compiled, **kwargs)
        assert result.total_failures > 50
        assert result.total_stall_cycles > 0

    def test_mixed_independent_and_coupled(self):
        """hr_aware mapping scatters Sets: some groups couple, and the run
        mixes both event paths in one simulation."""
        compiled = build_compiled_workload(
            synthetic_spec("engine-mixed", groups=8, n_operators=14,
                           mapping="hr_aware"))
        kwargs = dict(cycles=600, **self.STRESS)
        self.triangulate(compiled, **kwargs)


@pytest.fixture
def fresh_level_cache():
    """Isolate and restore the process-level physics cache around a test."""
    clear_level_cache()
    yield
    clear_level_cache()


class TestLevelCacheSharing:
    """The process-level per-(group, level) physics cache: reuse across runs
    must be invisible in the results, and the cache must stay keyed on
    everything the physics depends on."""

    def make_compiled(self, label="cache-w"):
        return build_compiled_workload(
            synthetic_spec(label, groups=4, macros_per_group=2,
                           n_operators=4))

    def run_once(self, compiled, **kwargs):
        return simulate(compiled, RuntimeConfig(**kwargs))

    def test_cross_run_reuse_is_bit_identical(self, fresh_level_cache):
        compiled = self.make_compiled()
        kwargs = dict(cycles=400, controller="booster", flip_mean=0.75,
                      monitor_noise=0.008, seed=1)
        cold = self.run_once(compiled, beta=10, **kwargs)
        assert level_cache_stats()["entries"] > 0
        before = level_cache_stats()["hits"]
        warm_other_beta = self.run_once(compiled, beta=40, **kwargs)
        assert level_cache_stats()["hits"] > before     # physics reused

        # The beta=40 run with a *disabled* cache must match bit-for-bit.
        old_budget = set_level_cache_budget(0)
        try:
            clean = self.run_once(compiled, beta=40, **kwargs)
        finally:
            set_level_cache_budget(old_budget)
        assert_results_equivalent(clean, warm_other_beta)
        # And beta actually matters (the runs are genuinely different).
        assert not np.array_equal(cold.group_results[0].level_trace,
                                  warm_other_beta.group_results[0].level_trace)

    def test_seed_and_noise_key_isolation(self, fresh_level_cache):
        """Runs differing only in seed (or noise level) never share entries:
        results equal a fresh-process run exactly."""
        compiled = self.make_compiled()
        base = dict(cycles=300, controller="booster", beta=8, flip_mean=0.75)
        first = self.run_once(compiled, monitor_noise=0.008, seed=1, **base)
        second = self.run_once(compiled, monitor_noise=0.008, seed=2, **base)
        third = self.run_once(compiled, monitor_noise=0.002, seed=1, **base)
        old_budget = set_level_cache_budget(0)
        try:
            for warm, kwargs in [
                    (first, dict(monitor_noise=0.008, seed=1)),
                    (second, dict(monitor_noise=0.008, seed=2)),
                    (third, dict(monitor_noise=0.002, seed=1))]:
                clean = self.run_once(compiled, **base, **kwargs)
                assert_results_equivalent(clean, warm)
        finally:
            set_level_cache_budget(old_budget)

    def test_zero_budget_disables_storage(self, fresh_level_cache):
        compiled = self.make_compiled()
        old_budget = set_level_cache_budget(0)
        try:
            self.run_once(compiled, cycles=200, controller="booster", seed=0)
            stats = level_cache_stats()
            assert stats["entries"] == 0 and stats["bytes"] == 0
        finally:
            set_level_cache_budget(old_budget)

    def test_budget_eviction_is_lru_and_bounded(self, fresh_level_cache):
        compiled = self.make_compiled()
        self.run_once(compiled, cycles=300, controller="booster", seed=0)
        stats = level_cache_stats()
        assert 0 < stats["bytes"] <= stats["budget_bytes"]
        # Shrinking the budget evicts down to the new bound immediately.
        old_budget = set_level_cache_budget(stats["bytes"] // 2)
        try:
            assert level_cache_stats()["bytes"] <= stats["bytes"] // 2
        finally:
            set_level_cache_budget(old_budget)

    def test_builder_fingerprint_shares_across_rebuilds(self, fresh_level_cache):
        """Two compiled instances of the same WorkloadSpec share entries via
        the builder-attached fingerprint (the sweep-worker pattern)."""
        from repro.sweep import clear_workload_cache
        compiled_a = self.make_compiled(label="cache-fp")
        self.run_once(compiled_a, cycles=200, controller="booster", seed=3)
        misses_before = level_cache_stats()["misses"]
        clear_workload_cache()                     # force a fresh build
        compiled_b = self.make_compiled(label="cache-fp")
        assert compiled_a is not compiled_b
        assert compiled_a.cache_key == compiled_b.cache_key
        self.run_once(compiled_b, cycles=200, controller="booster", seed=3)
        assert level_cache_stats()["misses"] == misses_before


class TestAdvanceNofail:
    def make_controller(self, beta=7):
        table = VFTable()
        controller = IRBoosterController(table, beta=beta)
        controller.configure_group(0, group_hr=0.42)
        return controller

    def clone_states(self, controller):
        state = controller.state(0)
        return (state.safe_level, state.a_level, state.level, state.safe_counter,
                state.failures, state.level_ups, state.level_downs)

    @pytest.mark.parametrize("spans", [
        [30], [1, 1, 1, 5], [100], [7, 14, 15, 16], [3, 40, 2, 60],
    ])
    def test_matches_stepwise_execution(self, spans):
        """advance_nofail == the same number of step() calls, at any phase."""
        fast = self.make_controller()
        slow = self.make_controller()
        for span in spans:
            transitions = fast.advance_nofail(0, span)
            observed = []
            for _ in range(span):
                slow.step(0, ir_failure=False)
                observed.append(slow.state(0).level)
            assert self.clone_states(fast) == self.clone_states(slow)
            # Every reported transition matches the stepwise level at the
            # same offset, and between transitions the level is constant.
            for offset, level in transitions:
                assert observed[offset - 1] == level
            # interleave a failure to shift the phase
            fast.step(0, ir_failure=True)
            slow.step(0, ir_failure=True)
            assert self.clone_states(fast) == self.clone_states(slow)

    def test_level_trace_reconstruction(self):
        """The transitions reconstruct the exact per-cycle level trace."""
        fast = self.make_controller(beta=5)
        slow = self.make_controller(beta=5)
        n = 60
        stepwise = []
        for _ in range(n):
            stepwise.append(slow.state(0).level)
            slow.step(0, ir_failure=False)
        trace = []
        level = fast.state(0).level
        transitions = fast.advance_nofail(0, n)
        breaks = {offset: lvl for offset, lvl in transitions}
        for cycle in range(n):
            if cycle in breaks:
                level = breaks[cycle]
            trace.append(level)
        assert trace == stepwise

    def test_zero_steps_is_noop(self):
        controller = self.make_controller()
        before = self.clone_states(controller)
        assert controller.advance_nofail(0, 0) == []
        assert self.clone_states(controller) == before


class TestBatchedPrimitives:
    def test_flip_factor_matrix_matches_sequence(self):
        seeds = [17, 34, 51, 9]
        matrix = flip_factor_matrix(seeds, 256, mean=0.55, std=0.2,
                                    correlation=0.8)
        assert matrix.shape == (4, 256)
        for i, seed in enumerate(seeds):
            row = flip_factor_sequence(256, mean=0.55, std=0.2, correlation=0.8,
                                       seed=seed)
            assert np.array_equal(matrix[i], row)

    def test_flip_factor_matrix_cached_and_readonly(self):
        a = flip_factor_matrix([1, 2], 64)
        b = flip_factor_matrix([1, 2], 64)
        assert a is b
        with pytest.raises(ValueError):
            a[0, 0] = 0.5

    def test_monitor_noise_is_cycle_indexed(self):
        sequential = IRMonitor(sensing_noise=0.01, seed=42)
        skipping = IRMonitor(sensing_noise=0.01, seed=42)
        dense = [sequential.noise_at(c) for c in range(20)]
        # Sampling only every third cycle must see the same per-cycle values.
        sparse = {c: skipping.noise_at(c) for c in range(0, 20, 3)}
        for cycle, value in sparse.items():
            assert value == dense[cycle]

    def test_monitor_batch_matches_scalar_sampling(self):
        scalar = IRMonitor(sensing_noise=0.01, seed=7)
        batch = IRMonitor(sensing_noise=0.01, seed=7, record_readings=False)
        rng = np.random.default_rng(0)
        effective = 0.65 + rng.normal(0.0, 0.01, size=200)
        expected = np.array([scalar.sample(c, float(effective[c]), 0.65)
                             for c in range(200)])
        observed = batch.sample_batch(0, effective, 0.65)
        assert np.array_equal(expected, observed)
        assert batch.failure_count == scalar.failure_count
        assert batch.readings == []                      # recording disabled
        assert len(scalar.readings) == 200

    def test_monitor_reading_cap(self):
        monitor = IRMonitor(sensing_noise=0.0, max_readings=10)
        for cycle in range(50):
            monitor.sample(cycle, 0.7, 0.65)
        assert len(monitor.readings) == 10
        assert monitor.readings[-1].cycle == 49
        assert monitor.failure_count == 0                # counters still global

    def test_accumulate_cycles_matches_scalar(self):
        model = EnergyModel()
        rng = np.random.default_rng(3)
        activity = rng.uniform(0.1, 0.9, size=300)
        stalled = rng.random(300) < 0.2
        scalar = EnergyBreakdown()
        for act, stall in zip(activity, stalled):
            model.accumulate_cycle(scalar, 0.71, 0.9e9, float(act), 2.5,
                                   stalled=bool(stall))
        batched = EnergyBreakdown()
        model.accumulate_cycles(batched, 0.71, 0.9e9, activity, 2.5,
                                stalled=stalled)
        traced = EnergyBreakdown()
        model.accumulate_trace(traced, np.full(300, 0.71), np.full(300, 0.9e9),
                               activity, 2.5, stalled=stalled)
        for result in (batched, traced):
            assert result.dynamic_energy == pytest.approx(scalar.dynamic_energy)
            assert result.static_energy == pytest.approx(scalar.static_energy)
            assert result.elapsed_time == pytest.approx(scalar.elapsed_time)
            assert result.completed_macs == pytest.approx(scalar.completed_macs)


def test_vectorized_results_stay_independently_mutable(fresh_level_cache):
    """Cached activity traces are shared read-only inside the engine, but the
    results hand out private writable copies (the PR-2 API)."""
    spec = WorkloadSpec(builder="synthetic", groups=2, macros_per_group=2,
                        banks=4, rows=8, n_operators=4, label="mutable-res")
    compiled = build_compiled_workload(spec)
    config = dict(cycles=120, controller="booster", seed=0)
    first = simulate(compiled, RuntimeConfig(**config))
    second = simulate(compiled, RuntimeConfig(**config))   # warm-cache run
    trace = second.macro_results[0].rtog_trace
    assert trace is not first.macro_results[0].rtog_trace
    original = first.macro_results[0].rtog_trace.copy()
    trace *= 0.5                                           # must not raise
    assert np.array_equal(first.macro_results[0].rtog_trace, original)
