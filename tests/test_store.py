"""Tests for the durable sharded record store (:mod:`repro.store`).

The load-bearing guarantees:

* every backend honours the same contract — append/iter round-trips, a
  later record supersedes an earlier failure for the same run, sealed
  stores refuse writes — so the runner can treat persistence as a plug;
* the legacy adapter stays **bit-compatible** with the single-JSON
  checkpoint format (``SweepResult.save`` digests and ``.bak`` rotation
  included), so old result files keep working unchanged;
* the sharded store is a real append-only log: per-line sha256 digests,
  torn tails truncated, mid-shard corruption quarantined to ``.corrupt``
  with every intact line kept (before *and* after the damage), lost
  manifests rebuilt from the shards;
* ``kill -9`` at the nastiest instants — mid-append, between fsync and
  manifest, inside the shard write itself — loses **no acknowledged
  record**, and a resumed sweep is bit-identical to an uninterrupted
  serial run, including resume from a legacy single-JSON checkpoint;
* the audit doctor diagnoses without mutating and repairs through the
  same recovery path a writable open uses.

Chaos-extended cases run when ``REPRO_CHAOS=1`` — CI's chaos job sets it.
"""

import json
import math
import multiprocessing
import os
import warnings

import numpy as np
import pytest

from repro.store import (
    LegacyJSONRecordStore,
    MemoryRecordStore,
    RecordStore,
    ShardedRecordStore,
    StoreError,
    audit_store,
    open_store,
    scan_store,
)
from repro.store.audit import main as audit_main
from repro.store.sharded import MANIFEST_NAME
from repro.sweep import (
    METRIC_NAMES,
    FailedRun,
    FaultSpec,
    MetricStats,
    RunRecord,
    SerialExecutor,
    SweepResult,
    SweepRunner,
    SweepSpec,
    WorkloadSpec,
    bound_traceback,
)
from repro.sweep import faults
from repro.sweep.faults import KILL_EXIT_CODE
from repro.sweep.records import _bootstrap_ci

CHAOS_EXTENDED = bool(os.environ.get("REPRO_CHAOS"))

TINY = WorkloadSpec(builder="synthetic", groups=2, macros_per_group=2, banks=4,
                    rows=8, n_operators=4, label="tiny")


def tiny_spec(**overrides) -> SweepSpec:
    defaults = dict(name="t", workloads=(TINY,), controllers=("booster",),
                    betas=(10, 50), cycles=120, seeds=2, master_seed=7)
    defaults.update(overrides)
    return SweepSpec(**defaults)


def records_as_dicts(result_or_records):
    if isinstance(result_or_records, SweepResult):
        return [r.to_json_dict() for r in result_or_records.sorted_records()]
    return [r.to_json_dict() for r in result_or_records]


def make_record(point_index: int, seed_index: int, **metric_overrides):
    metrics = {name: float(point_index * 100 + seed_index)
               for name in METRIC_NAMES}
    metrics.update(metric_overrides)
    return RunRecord(
        run_id=f"t/p{point_index:04d}/s{seed_index:03d}",
        point_index=point_index, seed_index=seed_index,
        seed=1000 + point_index * 10 + seed_index,
        point_key=(("workload", "tiny"), ("beta", point_index)),
        metrics=metrics)


def make_failed(point_index: int, seed_index: int, traceback: str = ""):
    return FailedRun(
        run_id=f"t/p{point_index:04d}/s{seed_index:03d}",
        point_index=point_index, seed_index=seed_index,
        error="InjectedFault('boom')", attempts=3, traceback=traceback)


@pytest.fixture(autouse=True)
def disarmed():
    faults.disarm_faults()
    yield
    faults.disarm_faults()


@pytest.fixture(scope="module")
def baseline():
    return SweepRunner(tiny_spec(), SerialExecutor()).run()


# --------------------------------------------------------------------- #
# backend contract: every store behaves the same
# --------------------------------------------------------------------- #
BACKENDS = [
    pytest.param(lambda tmp: MemoryRecordStore(), id="memory"),
    pytest.param(lambda tmp: LegacyJSONRecordStore(str(tmp / "r.json")),
                 id="legacy"),
    pytest.param(lambda tmp: ShardedRecordStore(str(tmp / "store")),
                 id="sharded"),
]


class TestStoreContract:
    @pytest.mark.parametrize("factory", BACKENDS)
    def test_append_iter_roundtrip_sorted(self, tmp_path, factory):
        store = factory(tmp_path)
        try:
            for point, seed in [(1, 1), (0, 0), (1, 0), (0, 1)]:
                store.append(make_record(point, seed))
            store.flush()
            got = list(store.iter_records())
            assert [(r.point_index, r.seed_index) for r in got] \
                == [(0, 0), (0, 1), (1, 0), (1, 1)]
            assert records_as_dicts(got) == records_as_dicts(
                sorted((make_record(p, s) for p, s in
                        [(0, 0), (0, 1), (1, 0), (1, 1)]),
                       key=lambda r: (r.point_index, r.seed_index)))
            assert store.run_ids() == {r.run_id for r in got}
        finally:
            store.close()

    @pytest.mark.parametrize("factory", BACKENDS)
    def test_record_supersedes_failure(self, tmp_path, factory):
        store = factory(tmp_path)
        try:
            store.append_failed(make_failed(0, 0))
            store.append(make_record(0, 1))
            assert [f.run_id for f in store.iter_failed()] == ["t/p0000/s000"]
            # A retry later in the pass succeeds: the failure disappears.
            store.append(make_record(0, 0))
            store.flush()
            assert list(store.iter_failed()) == []
            assert store.run_ids() == {"t/p0000/s000", "t/p0000/s001"}
            stats = store.stats()
            assert stats["records"] == 2 and stats["failed"] == 0
        finally:
            store.close()

    @pytest.mark.parametrize("factory", BACKENDS)
    def test_seal_refuses_further_writes(self, tmp_path, factory):
        store = factory(tmp_path)
        try:
            store.append(make_record(0, 0))
            assert not store.sealed
            store.seal()
            assert store.sealed
            with pytest.raises(StoreError, match="sealed"):
                store.append(make_record(0, 1))
            with pytest.raises(StoreError, match="sealed"):
                store.append_failed(make_failed(0, 1))
        finally:
            store.close()

    @pytest.mark.parametrize("factory", BACKENDS)
    def test_seed_from_and_to_result(self, tmp_path, factory):
        store = factory(tmp_path)
        try:
            seeded = store.seed_from([make_record(0, 0), make_record(0, 1)])
            assert seeded == 2
            result = store.to_result()
            assert isinstance(result, SweepResult)
            assert records_as_dicts(result) == records_as_dicts(
                [make_record(0, 0), make_record(0, 1)])
        finally:
            store.close()

    def test_open_store_factory_mapping(self, tmp_path):
        memory = open_store(":memory:")
        assert isinstance(memory, MemoryRecordStore)
        legacy = open_store(str(tmp_path / "out.json"))
        assert isinstance(legacy, LegacyJSONRecordStore)
        legacy.close()
        sharded = open_store(str(tmp_path / "storedir"))
        assert isinstance(sharded, ShardedRecordStore)
        sharded.close()
        # An existing RecordStore instance passes through untouched.
        assert open_store(memory) is memory
        assert isinstance(memory, RecordStore)

    def test_open_store_existing_legacy_file_without_extension(self, tmp_path):
        """A pre-existing single-JSON file routes to the legacy adapter even
        without a ``.json`` suffix — old checkpoints had arbitrary names."""
        path = str(tmp_path / "checkpoint")
        SweepResult(spec=tiny_spec()).save(path)
        store = open_store(path)
        try:
            assert isinstance(store, LegacyJSONRecordStore)
        finally:
            store.close()


# --------------------------------------------------------------------- #
# legacy adapter: bit-compatible with SweepResult.save
# --------------------------------------------------------------------- #
class TestLegacyBitCompat:
    def test_flush_writes_loadable_digested_checkpoint(self, tmp_path):
        path = str(tmp_path / "r.json")
        store = LegacyJSONRecordStore(path, spec=tiny_spec())
        records = [make_record(0, 0), make_record(0, 1)]
        for record in records:
            store.append(record)
        store.flush()
        store.close()
        loaded = SweepResult.load(path)       # digest-verifying load
        assert records_as_dicts(loaded) == records_as_dicts(records)

        # Byte-identical to what SweepResult.save writes directly.
        direct = str(tmp_path / "direct.json")
        mirror = SweepResult(spec=tiny_spec(), records=list(records))
        mirror.save(direct)
        assert open(path, "rb").read() == open(direct, "rb").read()

    def test_flush_rotates_bak_like_save(self, tmp_path):
        path = str(tmp_path / "r.json")
        store = LegacyJSONRecordStore(path)
        store.append(make_record(0, 0))
        store.flush()
        store.append(make_record(0, 1))
        store.flush()
        store.close()
        assert os.path.exists(path + ".bak")
        assert len(SweepResult.load(path + ".bak").records) == 1
        assert len(SweepResult.load(path).records) == 2

    def test_load_existing_adopts_prior_records(self, tmp_path):
        path = str(tmp_path / "r.json")
        prior = SweepResult(spec=tiny_spec(), records=[make_record(0, 0)])
        prior.save(path)
        store = LegacyJSONRecordStore(path, load_existing=True)
        try:
            assert store.run_ids() == {"t/p0000/s000"}
            store.append(make_record(0, 1))
            store.flush()
        finally:
            store.close()
        assert len(SweepResult.load(path).records) == 2


# --------------------------------------------------------------------- #
# sharded mechanics: rolling, byte-fidelity, compaction
# --------------------------------------------------------------------- #
class TestShardedMechanics:
    def test_rolls_shards_and_reopens_with_seq_continuity(self, tmp_path):
        directory = str(tmp_path / "store")
        store = ShardedRecordStore(directory, records_per_shard=3)
        for seed in range(5):
            store.append(make_record(0, seed))
        store.flush()
        assert store.stats()["shards"] >= 2
        store.close()

        reopened = ShardedRecordStore(directory, records_per_shard=3)
        try:
            assert len(list(reopened.iter_records())) == 5
            # Appends after reopen must not collide with recovered seqs:
            # a re-append of s000 supersedes, new records extend.
            reopened.append(make_record(0, 0))
            reopened.append(make_record(0, 5))
            reopened.flush()
            assert len(list(reopened.iter_records())) == 6
            assert reopened.stats()["records"] == 6
        finally:
            reopened.close()
        assert scan_store(directory).clean

    def test_records_roundtrip_byte_identical(self, tmp_path):
        """Stored records re-serialize to the same bytes they went in as —
        metric insertion order included (the legacy blob preserved it)."""
        directory = str(tmp_path / "store")
        record = make_record(2, 1)
        store = ShardedRecordStore(directory)
        store.append(record)
        store.flush()
        store.close()
        reopened = ShardedRecordStore(directory)
        try:
            got = list(reopened.iter_records())
        finally:
            reopened.close()
        assert json.dumps([r.to_json_dict() for r in got]) \
            == json.dumps([record.to_json_dict()])

    def test_non_finite_metrics_survive_shards(self, tmp_path):
        directory = str(tmp_path / "store")
        weird = make_record(0, 0, worst_ir_drop=float("nan"),
                            effective_tops=float("inf"))
        nasty = {name: -float("inf") for name in METRIC_NAMES}
        store = ShardedRecordStore(directory)
        store.append(weird)
        store.append(RunRecord(run_id="t/p0000/s001", point_index=0,
                               seed_index=1, seed=3,
                               point_key=(("beta", 10),), metrics=nasty))
        store.flush()
        store.close()
        reopened = ShardedRecordStore(directory)
        try:
            first, second = list(reopened.iter_records())
        finally:
            reopened.close()
        assert math.isnan(first.metrics["worst_ir_drop"])
        assert first.metrics["effective_tops"] == float("inf")
        assert all(v == -float("inf") for v in second.metrics.values())
        assert scan_store(directory).clean

    def test_compact_drops_superseded_lines(self, tmp_path):
        directory = str(tmp_path / "store")
        store = ShardedRecordStore(directory, records_per_shard=2)
        store.append_failed(make_failed(0, 0))
        for _ in range(3):                    # 3 superseding rewrites
            store.append(make_record(0, 0))
        store.append(make_record(0, 1))
        store.flush()
        before = scan_store(directory)
        assert before.superseded_lines > 0
        dropped = store.compact()
        assert dropped > 0
        assert store.stats()["compactions"] == 1
        assert records_as_dicts(list(store.iter_records())) \
            == records_as_dicts([make_record(0, 0), make_record(0, 1)])
        store.close()
        after = scan_store(directory)
        assert after.clean
        assert records_as_dicts(after.records) \
            == records_as_dicts([make_record(0, 0), make_record(0, 1)])

    def test_auto_compaction_runs_in_background(self, tmp_path):
        directory = str(tmp_path / "store")
        store = ShardedRecordStore(directory, records_per_shard=2,
                                   auto_compact_shards=2)
        for seed in range(8):
            store.append(make_record(0, seed % 3))   # plenty superseded
        store.flush()
        store.close()                         # close joins the compactor
        reopened = ShardedRecordStore(directory)
        try:
            assert reopened.stats()["records"] == 3
        finally:
            reopened.close()
        assert scan_store(directory).clean

    def test_spec_mismatch_refuses_to_mix_sweeps(self, tmp_path):
        directory = str(tmp_path / "store")
        store = ShardedRecordStore(directory, spec=tiny_spec())
        store.append(make_record(0, 0))
        store.flush()
        store.close()
        with pytest.raises(StoreError, match="different sweep"):
            ShardedRecordStore(directory, spec=tiny_spec(master_seed=99))


# --------------------------------------------------------------------- #
# sharded recovery: torn tails, corruption, lost manifests
# --------------------------------------------------------------------- #
def _populated_store(directory: str, n: int = 4,
                     records_per_shard: int = 4096) -> None:
    store = ShardedRecordStore(directory, records_per_shard=records_per_shard)
    for seed in range(n):
        store.append(make_record(0, seed))
    store.flush()
    store.close()


def _single_shard(directory: str) -> str:
    shards = sorted(os.listdir(os.path.join(directory, "shards")))
    assert len(shards) == 1
    return os.path.join(directory, "shards", shards[0])


class TestShardedRecovery:
    def test_torn_tail_truncated_acknowledged_records_kept(self, tmp_path):
        directory = str(tmp_path / "store")
        _populated_store(directory, n=4)
        shard = _single_shard(directory)
        with open(shard, "r+b") as handle:   # tear the last line mid-write
            handle.truncate(os.path.getsize(shard) - 7)
        store = ShardedRecordStore(directory)
        try:
            assert store.stats()["torn_tail_dropped"] == 1
            got = list(store.iter_records())
            assert records_as_dicts(got) \
                == records_as_dicts([make_record(0, s) for s in range(3)])
            # The store keeps accepting appends after the heal.
            store.append(make_record(0, 3))
            store.flush()
        finally:
            store.close()
        report = scan_store(directory)
        assert report.clean and len(report.records) == 4

    def test_mid_shard_corruption_quarantined_intact_lines_kept(
            self, tmp_path):
        directory = str(tmp_path / "store")
        _populated_store(directory, n=5)
        shard = _single_shard(directory)
        raw = open(shard, "rb").read()
        lines = raw.splitlines(keepends=True)
        # Damage line 1 of 5: lines 0 and 2-4 — before AND after the
        # damage — must both survive recovery.
        lines[1] = lines[1][:10] + b"\x00" + lines[1][11:]
        open(shard, "wb").write(b"".join(lines))

        with pytest.warns(RuntimeWarning, match="quarantining"):
            store = ShardedRecordStore(directory)
        try:
            stats = store.stats()
            assert stats["shards_quarantined"] == 1
            assert stats["corrupt_lines_dropped"] == 1
            survivors = [r.seed_index for r in store.iter_records()]
            assert survivors == [0, 2, 3, 4]
        finally:
            store.close()
        assert os.path.exists(shard + ".corrupt")
        report = scan_store(directory)
        assert report.clean and report.quarantined_files == 1

    def test_lost_manifest_rebuilt_from_shards(self, tmp_path):
        directory = str(tmp_path / "store")
        _populated_store(directory, n=3)
        os.unlink(os.path.join(directory, MANIFEST_NAME))
        store = ShardedRecordStore(directory)
        try:
            assert store.stats()["manifest_rebuilds"] == 1
            assert len(list(store.iter_records())) == 3
        finally:
            store.close()
        assert os.path.exists(os.path.join(directory, MANIFEST_NAME))
        assert scan_store(directory).clean

    def test_scan_store_diagnoses_without_mutating(self, tmp_path):
        directory = str(tmp_path / "store")
        _populated_store(directory, n=3)
        shard = _single_shard(directory)
        with open(shard, "r+b") as handle:
            handle.truncate(os.path.getsize(shard) - 5)
        before = open(shard, "rb").read()
        report = scan_store(directory)
        assert not report.clean
        assert any("torn tail" in problem for problem in report.problems)
        assert len(report.records) == 2       # intact lines still served
        assert open(shard, "rb").read() == before     # nothing touched


# --------------------------------------------------------------------- #
# audit doctor CLI
# --------------------------------------------------------------------- #
class TestAuditCLI:
    def test_clean_store_exits_zero(self, tmp_path, capsys):
        directory = str(tmp_path / "store")
        _populated_store(directory, n=2)
        assert audit_main([directory]) == 0
        assert "clean" in capsys.readouterr().out

    def test_damaged_store_exits_one_and_repair_heals(self, tmp_path, capsys):
        directory = str(tmp_path / "store")
        _populated_store(directory, n=3)
        shard = _single_shard(directory)
        with open(shard, "r+b") as handle:
            handle.truncate(os.path.getsize(shard) - 5)
        assert audit_main([directory]) == 1   # diagnose only: still damaged
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert audit_main(["--repair", "--compact", directory]) == 0
        capsys.readouterr()
        assert audit_main([directory]) == 0   # now durable-clean
        assert scan_store(directory).clean

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        directory = str(tmp_path / "store")
        _populated_store(directory, n=2)
        assert audit_main(["--json", directory]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["scan"]["records"] == 2

    def test_audit_store_reports_repair_actions(self, tmp_path):
        directory = str(tmp_path / "store")
        _populated_store(directory, n=3)
        os.unlink(os.path.join(directory, MANIFEST_NAME))
        report = audit_store(directory, repair=True)
        assert report["scan"]["clean"] is False       # as found
        assert report["repair"]["manifest_rebuilds"] == 1
        assert report["rescan"]["clean"] is True
        assert report["clean"] is True        # the verdict is post-repair


# --------------------------------------------------------------------- #
# runner integration: the store as persistence authority
# --------------------------------------------------------------------- #
class TestRunnerStoreIntegration:
    def test_full_run_through_store_is_bit_identical(self, tmp_path,
                                                     baseline):
        directory = str(tmp_path / "store")
        result = SweepRunner(tiny_spec(), SerialExecutor()).run(
            store=directory, checkpoint_every=1)
        assert json.dumps(records_as_dicts(result)) \
            == json.dumps(records_as_dicts(baseline))
        store = ShardedRecordStore(directory)
        try:
            assert store.sealed
            assert json.dumps(records_as_dicts(list(store.iter_records()))) \
                == json.dumps(records_as_dicts(baseline))
        finally:
            store.close()
        assert scan_store(directory).clean

    def test_interrupt_and_implicit_resume_is_bit_identical(self, tmp_path,
                                                            baseline):
        directory = str(tmp_path / "store")
        spec = tiny_spec()
        seen = []
        partial = SweepRunner(spec, SerialExecutor()).run(
            store=directory, checkpoint_every=1,
            should_stop=lambda: len(seen) >= 2,
            progress=lambda p: seen.append(p))
        assert 0 < len(partial.records) < spec.n_runs

        resumed = SweepRunner(spec, SerialExecutor()).run(
            store=directory, checkpoint_every=1)
        assert json.dumps(records_as_dicts(resumed)) \
            == json.dumps(records_as_dicts(baseline))
        def aggregate_rows(result):
            return [(s.point_index, st.mean, st.std, st.ci_low, st.ci_high)
                    for s in result.aggregate()
                    for st in [s.stats["worst_ir_drop"]]]
        assert json.dumps(aggregate_rows(resumed)) \
            == json.dumps(aggregate_rows(baseline))

    def test_legacy_checkpoint_migrates_into_store(self, tmp_path, baseline):
        legacy = str(tmp_path / "legacy.json")
        directory = str(tmp_path / "store")
        spec = tiny_spec()
        seen = []
        SweepRunner(spec, SerialExecutor()).run(
            save_path=legacy, checkpoint_every=1,
            should_stop=lambda: len(seen) >= 2,
            progress=lambda p: seen.append(p))
        assert os.path.exists(legacy)

        migrated = SweepRunner(spec, SerialExecutor()).run(
            resume_from=legacy, store=directory, checkpoint_every=1)
        assert json.dumps(records_as_dicts(migrated)) \
            == json.dumps(records_as_dicts(baseline))
        # The store is now the authority: it holds everything and is sealed.
        stored = SweepResult.load_resumable(directory)
        assert json.dumps(records_as_dicts(stored)) \
            == json.dumps(records_as_dicts(baseline))
        assert scan_store(directory).sealed

    def test_store_and_save_path_are_mutually_exclusive(self, tmp_path):
        runner = SweepRunner(tiny_spec(), SerialExecutor())
        with pytest.raises(ValueError, match="one persistence authority"):
            runner.run(store=str(tmp_path / "store"),
                       save_path=str(tmp_path / "r.json"))

    def test_checkpoint_every_requires_a_destination(self):
        runner = SweepRunner(tiny_spec(), SerialExecutor())
        with pytest.raises(ValueError, match="checkpoint_every"):
            runner.run(checkpoint_every=1)


# --------------------------------------------------------------------- #
# chaos: kill -9 at the store's named fault sites
# --------------------------------------------------------------------- #
def _sweep_once(store_dir, spec_dict, fault_dicts, resume_from=None):
    """Child-process body: one sweep pass persisting through the store."""
    faults.disarm_faults()
    if fault_dicts:
        faults.arm_faults(*[FaultSpec(**f) for f in fault_dicts])
    spec = SweepSpec.from_json_dict(spec_dict)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        SweepRunner(spec, SerialExecutor()).run(
            store=store_dir, checkpoint_every=1, resume_from=resume_from)
    os._exit(0)


def run_sweep_once(store_dir: str, spec: SweepSpec, fault_dicts=(),
                   resume_from=None) -> int:
    context = multiprocessing.get_context("fork")
    child = context.Process(
        target=_sweep_once,
        args=(store_dir, spec.to_json_dict(), list(fault_dicts), resume_from))
    child.start()
    child.join(timeout=180)
    if child.is_alive():                      # pragma: no cover - deadline
        child.kill()
        child.join()
        pytest.fail("sweep child did not exit within the deadline")
    return child.exitcode


#: (fault, run_ids whose flush() returned before the kill — the
#: *acknowledged* records that must survive the crash verbatim).
ACKED_FIRST_TWO = ("t/p0000/s000", "t/p0000/s001")
STORE_KILL_SITES = [
    # Kill *before* the third record's append: the two acknowledged
    # (flushed) records must survive verbatim.
    pytest.param({"kind": "daemon_kill",
                  "match": "recordstore:append:t/p0001/s000"},
                 ACKED_FIRST_TWO, id="before-append"),
    # Torn write inside the shard append itself, then kill.
    pytest.param({"kind": "shard_torn", "match": "#record:t/p0001/s000"},
                 ACKED_FIRST_TWO, id="mid-shard-write-torn"),
    # Kill inside the first flush, between the fsync and the manifest
    # rewrite: nothing was acknowledged yet, but recovery must still work.
    pytest.param({"kind": "daemon_kill", "match": "recordstore:flush"},
                 (), id="after-fsync-before-manifest"),
    # Kill right after a manifest replace (fires at the very first one —
    # the open itself — so this is a crash before any record).
    pytest.param({"kind": "daemon_kill", "match": "recordstore:manifest"},
                 (), id="after-manifest",
                 marks=pytest.mark.skipif(not CHAOS_EXTENDED,
                                          reason="REPRO_CHAOS=1 only")),
]


class TestStoreChaos:
    @pytest.mark.parametrize("fault,acked", STORE_KILL_SITES)
    def test_kill_resume_is_bit_identical(self, tmp_path, baseline, fault,
                                          acked):
        directory = str(tmp_path / "store")
        spec = tiny_spec()
        first = run_sweep_once(directory, spec, [fault])
        assert first == KILL_EXIT_CODE, \
            f"fault {fault} never fired (exit {first})"

        # No acknowledged record lost: everything the killed pass flushed
        # is still there, byte-identical to the uninterrupted baseline.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            survivor = ShardedRecordStore(directory)
        try:
            surviving = {r.run_id: r.to_json_dict()
                         for r in survivor.iter_records()}
        finally:
            survivor.close()
        by_id = {r.run_id: r.to_json_dict()
                 for r in baseline.sorted_records()}
        assert set(acked) <= set(surviving)
        for run_id, payload in surviving.items():
            assert json.dumps(payload) == json.dumps(by_id[run_id])

        # Restart with no faults: recovery + resume completes the sweep.
        assert run_sweep_once(directory, spec, []) == 0
        stored = SweepResult.load_resumable(directory)
        assert json.dumps(records_as_dicts(stored)) \
            == json.dumps(records_as_dicts(baseline))
        assert scan_store(directory).sealed
        report = audit_store(directory)
        assert report["clean"], report

    def test_latent_shard_corruption_heals_on_resume(self, tmp_path,
                                                     baseline):
        """``shard_corrupt`` models disk damage, not a crash: the pass is
        interrupted, a byte flips, and the next open quarantines the shard
        and re-runs only what the corruption ate."""
        directory = str(tmp_path / "store")
        spec = tiny_spec()
        seen = []
        faults.arm_faults(FaultSpec(kind="shard_corrupt", match="shard-"))
        try:
            SweepRunner(spec, SerialExecutor()).run(
                store=directory, checkpoint_every=1,
                should_stop=lambda: len(seen) >= 2,
                progress=lambda p: seen.append(p))
        finally:
            faults.disarm_faults()

        with pytest.warns(RuntimeWarning, match="quarantining"):
            resumed = SweepRunner(spec, SerialExecutor()).run(
                store=directory, checkpoint_every=1)
        assert json.dumps(records_as_dicts(resumed)) \
            == json.dumps(records_as_dicts(baseline))
        report = scan_store(directory)
        assert report.clean and report.quarantined_files == 1

    def test_lost_manifest_heals_on_resume(self, tmp_path, baseline):
        directory = str(tmp_path / "store")
        spec = tiny_spec()
        seen = []
        # `times=100` vaporizes *every* manifest write of the pass, so the
        # interrupted store is guaranteed to end without its index.
        faults.arm_faults(FaultSpec(kind="manifest_lost",
                                    match=MANIFEST_NAME, times=100))
        try:
            SweepRunner(spec, SerialExecutor()).run(
                store=directory, checkpoint_every=1,
                should_stop=lambda: len(seen) >= 2,
                progress=lambda p: seen.append(p))
        finally:
            faults.disarm_faults()
        assert not os.path.exists(os.path.join(directory, MANIFEST_NAME))

        resumed = SweepRunner(spec, SerialExecutor()).run(
            store=directory, checkpoint_every=1)
        assert json.dumps(records_as_dicts(resumed)) \
            == json.dumps(records_as_dicts(baseline))
        assert os.path.exists(os.path.join(directory, MANIFEST_NAME))
        report = scan_store(directory)
        assert report.clean and report.sealed
        assert len(report.records) == spec.n_runs

    def test_kill_during_legacy_migration_then_resume(self, tmp_path,
                                                      baseline):
        """A crash halfway through migrating a legacy checkpoint into the
        store restarts cleanly: the migration re-seeds (seq dedup absorbs
        the duplicates) and the finished sweep matches the baseline."""
        legacy = str(tmp_path / "legacy.json")
        directory = str(tmp_path / "store")
        spec = tiny_spec()
        seen = []
        SweepRunner(spec, SerialExecutor()).run(
            save_path=legacy, checkpoint_every=1,
            should_stop=lambda: len(seen) >= 2,
            progress=lambda p: seen.append(p))

        # The second migrated append dies mid-seed.
        fault = {"kind": "daemon_kill",
                 "match": "recordstore:append:t/p0000/s001"}
        assert run_sweep_once(directory, spec, [fault],
                              resume_from=legacy) == KILL_EXIT_CODE
        assert run_sweep_once(directory, spec, [],
                              resume_from=legacy) == 0
        stored = SweepResult.load_resumable(directory)
        assert json.dumps(records_as_dicts(stored)) \
            == json.dumps(records_as_dicts(baseline))
        assert audit_store(directory)["clean"]

    @pytest.mark.skipif(not CHAOS_EXTENDED, reason="REPRO_CHAOS=1 only")
    def test_double_kill_then_resume(self, tmp_path, baseline):
        directory = str(tmp_path / "store")
        spec = tiny_spec()
        torn = {"kind": "shard_torn", "match": "#record:t/p0000/s001"}
        flush = {"kind": "daemon_kill", "match": "recordstore:flush"}
        assert run_sweep_once(directory, spec, [torn]) == KILL_EXIT_CODE
        assert run_sweep_once(directory, spec, [flush]) == KILL_EXIT_CODE
        assert run_sweep_once(directory, spec, []) == 0
        stored = SweepResult.load_resumable(directory)
        assert json.dumps(records_as_dicts(stored)) \
            == json.dumps(records_as_dicts(baseline))


# --------------------------------------------------------------------- #
# satellite: record serialization edge cases
# --------------------------------------------------------------------- #
class TestRecordSerialization:
    def test_run_record_roundtrip_with_non_finite_metrics(self):
        record = make_record(0, 0, worst_ir_drop=float("nan"),
                             effective_tops=float("inf"),
                             total_energy=-float("inf"))
        wire = json.loads(json.dumps(record.to_json_dict()))
        back = RunRecord.from_json_dict(wire)
        assert math.isnan(back.metrics["worst_ir_drop"])
        assert back.metrics["effective_tops"] == float("inf")
        assert back.metrics["total_energy"] == -float("inf")
        assert back.run_id == record.run_id
        assert back.point_key == record.point_key

    def test_failed_run_roundtrip_keeps_bounded_traceback(self):
        trace = "\n".join(f"frame {i}" for i in range(50))
        failed = FailedRun.from_run(
            type("Run", (), {"run_id": "t/p0000/s000", "point_index": 0,
                             "seed_index": 0})(),
            error="boom", attempts=2, traceback=trace)
        assert failed.traceback.startswith("... (30 leading lines dropped)")
        assert failed.traceback.endswith("frame 49")
        back = FailedRun.from_json_dict(
            json.loads(json.dumps(failed.to_json_dict())))
        assert back == failed

    def test_failed_run_pre_traceback_payloads_still_load(self):
        payload = make_failed(0, 0).to_json_dict()
        del payload["traceback"]
        assert FailedRun.from_json_dict(payload).traceback == ""

    def test_metric_stats_roundtrip_with_non_finite_values(self):
        stats = MetricStats(mean=float("nan"), std=float("inf"),
                            ci_low=-float("inf"), ci_high=float("nan"), n=3)
        wire = json.loads(json.dumps({
            "mean": stats.mean, "std": stats.std, "ci_low": stats.ci_low,
            "ci_high": stats.ci_high, "n": stats.n}))
        back = MetricStats(**wire)
        assert math.isnan(back.mean) and back.std == float("inf")
        assert back.ci_low == -float("inf") and math.isnan(back.ci_high)
        assert back.n == 3

    def test_bound_traceback_char_cap_and_empty(self):
        assert bound_traceback("") == ""
        assert bound_traceback(None) == ""
        giant = "x" * 10000
        bounded = bound_traceback(giant, max_lines=5, max_chars=100)
        assert bounded.startswith("... (truncated)\n")
        assert len(bounded) <= 100 + len("... (truncated)\n")


class TestBootstrapDegenerates:
    def test_empty_values(self):
        rng = np.random.default_rng(0)
        assert _bootstrap_ci(np.array([]), rng, 50, 0.95) == (0.0, 0.0)

    def test_single_value(self):
        rng = np.random.default_rng(0)
        assert _bootstrap_ci(np.array([3.5]), rng, 50, 0.95) == (3.5, 3.5)

    def test_identical_values_collapse(self):
        rng = np.random.default_rng(0)
        low, high = _bootstrap_ci(np.array([2.0] * 8), rng, 50, 0.95)
        assert low == high == 2.0

    def test_non_finite_values_propagate_without_crashing(self):
        rng = np.random.default_rng(0)
        low, high = _bootstrap_ci(np.array([1.0, float("nan")]), rng, 50,
                                  0.95)
        assert math.isnan(low) or math.isnan(high) \
            or (low <= 1.0 <= high)


class TestShardedDiskExhaustion:
    """ENOSPC on the shard log is a degraded mode, not a crash (PR 10)."""

    def test_enospc_backlog_defers_then_drains_in_order(self, tmp_path):
        directory = str(tmp_path / "store")
        store = ShardedRecordStore(directory)
        with faults.injected_faults(
                FaultSpec(kind="disk_full", match="shard:", times=4)):
            store.append(make_record(0, 0))
            store.append_failed(make_failed(0, 1))
            assert store.disk_degraded()
            stats = store.stats()
            assert stats["backlog"] == 2
            assert stats["disk_full_errors"] >= 2
            # A flush during the outage must not pretend durability: the
            # backlog stays deferred and the manifest rewrite is skipped.
            store.flush()
            assert store.disk_degraded()
            # Sealing would be a lie while outcomes are deferred.
            with pytest.raises(StoreError, match="cannot seal"):
                store.seal()
        # Space returns: the next append drains the backlog FIFO first.
        store.append(make_record(1, 0))
        assert not store.disk_degraded()
        assert store.stats()["backlog"] == 0
        store.append(make_record(1, 1))
        store.flush()
        store.seal()
        store.close()
        # Nothing acknowledged was lost, and the store audits clean.
        report = scan_store(directory)
        assert {(r.point_index, r.seed_index) for r in report.records} == \
            {(0, 0), (1, 0), (1, 1)}
        assert [(f.point_index, f.seed_index) for f in report.failed] == \
            [(0, 1)]
        assert audit_main([directory]) == 0

    def test_manifest_enospc_skips_write_and_self_heals(self, tmp_path):
        directory = str(tmp_path / "store")
        store = ShardedRecordStore(directory)
        store.append(make_record(0, 0))
        with faults.injected_faults(
                FaultSpec(kind="disk_full", match="manifest", times=1)):
            store.flush()                  # manifest write hits ENOSPC
        assert store.stats()["disk_full_errors"] == 1
        store.append(make_record(0, 1))
        store.flush()                      # space back: manifest rewrites
        store.close()
        reopened = ShardedRecordStore(directory)
        assert len(list(reopened.iter_records())) == 2
        reopened.close()
