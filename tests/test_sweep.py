"""Tests for the parallel multi-seed sweep subsystem (:mod:`repro.sweep`).

The load-bearing guarantees:

* expansion is deterministic and seeds depend only on ``(master_seed,
  point_index, seed_index)``;
* the pool executor reproduces serial sweeps **bit-for-bit**;
* resuming from a partial JSON file yields the same records *and* the same
  aggregates (bootstrap CIs included) as an uninterrupted run;
* a 2-point mini-sweep (the ``sweep_smoke`` marker) exercises the whole path
  within tier-1 time budgets.
"""

import json

import numpy as np
import pytest

from repro.sim import CompiledWorkload
from repro.sweep import (
    METRIC_NAMES,
    PoolExecutor,
    RetryPolicy,
    SerialExecutor,
    SweepRunner,
    SweepSpec,
    SweepResult,
    WorkloadSpec,
    build_compiled_workload,
    execute_run,
    register_workload_builder,
    run_seed,
    run_sweeps,
)

#: Fast synthetic workload on a tiny chip: builds in milliseconds, no QAT.
TINY = WorkloadSpec(builder="synthetic", groups=2, macros_per_group=2, banks=4,
                    rows=8, n_operators=4, label="tiny")


def tiny_spec(**overrides) -> SweepSpec:
    defaults = dict(name="t", workloads=(TINY,), controllers=("booster",),
                    betas=(10, 50), cycles=200, seeds=2, master_seed=7)
    defaults.update(overrides)
    return SweepSpec(**defaults)


def records_as_dicts(result: SweepResult):
    return [r.to_json_dict() for r in result.sorted_records()]


class TestSpec:
    def test_expand_grid_shape_and_ids(self):
        spec = tiny_spec(controllers=("dvfs", "booster"), seeds=3)
        runs = spec.expand()
        assert spec.n_points == 4 and spec.n_runs == 12 and len(runs) == 12
        assert len({r.run_id for r in runs}) == 12
        assert all(r.run_id.startswith("t/") for r in runs)

    def test_seeds_depend_only_on_coordinates(self):
        spec = tiny_spec()
        again = tiny_spec()
        assert [r.seed for r in spec.expand()] == [r.seed for r in again.expand()]
        # Different master seed -> different ensemble.
        shifted = tiny_spec(master_seed=8)
        assert [r.seed for r in spec.expand()] != [r.seed for r in shifted.expand()]
        # The derivation is the documented SeedSequence contract.
        first = spec.expand()[0]
        assert first.seed == run_seed(7, first.point_index, first.seed_index)

    def test_point_key_excludes_seed(self):
        runs = tiny_spec(seeds=3).expand()
        by_point = {}
        for run in runs:
            by_point.setdefault(run.point_index, set()).add(run.point_key)
        assert all(len(keys) == 1 for keys in by_point.values())

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            tiny_spec(seeds=0)
        with pytest.raises(ValueError):
            tiny_spec(cycles=0)

    def test_spec_json_roundtrip(self):
        spec = tiny_spec(flip_means=(0.5, 0.7), monitor_noises=(0.0, 0.003))
        assert SweepSpec.from_json_dict(spec.to_json_dict()) == spec


class TestBuilders:
    def test_synthetic_builder_is_deterministic_and_cached(self):
        first = build_compiled_workload(TINY)
        assert isinstance(first, CompiledWorkload)
        assert build_compiled_workload(TINY) is first          # per-process memo
        assert len(first.tasks) == 4
        # qk_t operators mark their group input-determined.
        assert any(first.group_input_determined.values())

    def test_unknown_builder_raises(self):
        bad = WorkloadSpec(builder="no-such-builder")
        with pytest.raises(KeyError, match="no-such-builder"):
            build_compiled_workload(bad)

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_workload_builder("synthetic", lambda spec: None)

    def test_execute_run_metrics_complete(self):
        record = execute_run(tiny_spec().expand()[0])
        assert set(record.metrics) == set(METRIC_NAMES)
        assert record.metrics["effective_tops"] > 0
        assert record.metrics["worst_ir_drop"] > 0


class TestDeterminism:
    def test_serial_rerun_is_identical(self):
        spec = tiny_spec()
        a = SweepRunner(spec, SerialExecutor()).run()
        b = SweepRunner(spec, SerialExecutor()).run()
        assert records_as_dicts(a) == records_as_dicts(b)

    def test_pool_matches_serial_bit_for_bit(self):
        spec = tiny_spec(seeds=3)
        serial = SweepRunner(spec, SerialExecutor()).run()
        pool = SweepRunner(spec, PoolExecutor(processes=2, chunksize=1)).run()
        assert records_as_dicts(serial) == records_as_dicts(pool)

    def test_run_sweeps_parallelizes_coupled_grids(self):
        specs = [tiny_spec(name="a", controllers=("dvfs",)),
                 tiny_spec(name="b", controllers=("booster",))]
        results = run_sweeps(specs, executor=SerialExecutor())
        assert set(results) == {"a", "b"}
        for name, result in results.items():
            assert all(r.run_id.startswith(f"{name}/") for r in result.records)
        # DVFS at the signoff level never raises IRFailures.
        dvfs_points = results["a"].aggregate()
        assert all(p.stats["total_failures"].mean == 0 for p in dvfs_points)
        with pytest.raises(ValueError, match="unique"):
            run_sweeps([tiny_spec(), tiny_spec()])


class TestAggregation:
    def test_point_statistics_and_bootstrap_ci(self):
        result = SweepRunner(tiny_spec(seeds=4), SerialExecutor()).run()
        for point in result.aggregate():
            assert point.n_seeds == 4
            for stats in point.stats.values():
                assert stats.n == 4
                assert stats.std >= 0.0
                assert stats.ci_low <= stats.mean + 1e-12
                assert stats.ci_high >= stats.mean - 1e-12

    def test_single_seed_degenerate_ci(self):
        result = SweepRunner(tiny_spec(seeds=1), SerialExecutor()).run()
        point = result.aggregate()[0]
        stats = point.stats["effective_tops"]
        assert stats.std == 0.0
        assert stats.ci_low == stats.mean == stats.ci_high

    def test_select_and_point_lookup(self):
        result = SweepRunner(tiny_spec(), SerialExecutor()).run()
        assert len(result.select(beta=10)) == 1
        assert result.point(beta=10).axes["beta"] == 10
        with pytest.raises(KeyError):
            result.point(workload="tiny")        # both betas match

    def test_beta_ordering_matches_runtime(self):
        """The sweep reproduces the Fig. 18 shape: small beta -> more failures."""
        result = SweepRunner(tiny_spec(seeds=3), SerialExecutor()).run()
        failures = {p.axes["beta"]: p.stats["total_failures"].mean
                    for p in result.aggregate()}
        assert failures[10] >= failures[50]


class TestPersistenceAndResume:
    def test_save_load_roundtrip(self, tmp_path):
        result = SweepRunner(tiny_spec(), SerialExecutor()).run()
        path = str(tmp_path / "sweep.json")
        result.save(path)
        loaded = SweepResult.load(path)
        assert loaded.spec == result.spec
        assert records_as_dicts(loaded) == records_as_dicts(result)

    def test_resume_from_partial_matches_fresh(self, tmp_path):
        spec = tiny_spec(seeds=3)
        fresh = SweepRunner(spec, SerialExecutor()).run()

        full_path = str(tmp_path / "full.json")
        fresh.save(full_path)
        payload = json.loads(open(full_path).read())
        payload["records"] = payload["records"][: len(payload["records"]) // 2]
        # The hand-edited payload no longer matches its content digest; drop
        # it (digest-less checkpoints load like pre-integrity ones) so this
        # stays a genuine partial *resume*, not a corruption fallback.
        payload.pop("integrity", None)
        partial_path = str(tmp_path / "partial.json")
        with open(partial_path, "w") as handle:
            json.dump(payload, handle)

        resumed = SweepRunner(spec, SerialExecutor()).run(resume_from=partial_path)
        assert records_as_dicts(resumed) == records_as_dicts(fresh)

        # Aggregates (bootstrap CIs included) are bit-identical too.
        for a, b in zip(fresh.aggregate(), resumed.aggregate()):
            assert a.stats == b.stats

    def test_resume_rejects_foreign_master_seed(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        SweepRunner(tiny_spec(master_seed=7), SerialExecutor()).run(save_path=path)
        other = tiny_spec(master_seed=8)
        with pytest.raises(ValueError, match="refusing to mix"):
            SweepRunner(other, SerialExecutor()).run(resume_from=path)

    @pytest.mark.parametrize("edit", [
        dict(betas=(20, 60)),
        dict(cycles=400),
        dict(recompute_cycles=48),
        dict(workloads=(WorkloadSpec(builder="synthetic", groups=4,
                                     macros_per_group=2, banks=4, rows=8,
                                     n_operators=4, label="tiny"),)),
    ], ids=["betas", "cycles", "recompute", "workload-same-label"])
    def test_resume_rejects_changed_grid(self, tmp_path, edit):
        """Editing the grid or workload definition while keeping name/master
        seed must not pass stale records off as results for the new spec."""
        path = str(tmp_path / "sweep.json")
        SweepRunner(tiny_spec(), SerialExecutor()).run(save_path=path)
        with pytest.raises(ValueError, match="grid changed"):
            SweepRunner(tiny_spec(**edit), SerialExecutor()).run(resume_from=path)

    def test_resume_ignores_records_of_other_sweeps(self, tmp_path):
        path = str(tmp_path / "other.json")
        SweepRunner(tiny_spec(name="other"), SerialExecutor()).run(save_path=path)
        result = SweepRunner(tiny_spec(), SerialExecutor()).run(resume_from=path)
        assert len(result.records) == tiny_spec().n_runs

    def test_save_path_checkpoints(self, tmp_path):
        path = str(tmp_path / "out.json")
        result = SweepRunner(tiny_spec(), SerialExecutor()).run(save_path=path)
        assert records_as_dicts(SweepResult.load(path)) == records_as_dicts(result)


@pytest.mark.sweep_smoke
def test_mini_sweep_smoke():
    """Tier-1 smoke: a 2-point mini-sweep through the full runner path.

    Mirrors what ``pytest benchmarks/ --smoke`` exercises at scale, but with a
    synthetic workload and a short horizon so it stays well under a second.
    """
    spec = SweepSpec(name="smoke", workloads=(TINY,),
                     controllers=("dvfs", "booster"), betas=(50,), cycles=120,
                     seeds=1, master_seed=0)
    result = SweepRunner(spec, SerialExecutor()).run()
    points = result.aggregate()
    assert spec.n_points == 2 and len(points) == 2
    booster = result.point(controller="booster")
    dvfs = result.point(controller="dvfs")
    assert dvfs.stats["total_failures"].mean == 0
    assert booster.stats["average_macro_power_mw"].mean <= \
        dvfs.stats["average_macro_power_mw"].mean


class StopAfter(Exception):
    """Injected executor failure for the kill/resume checkpointing tests."""


class ExplodingExecutor(SerialExecutor):
    """Serial executor that dies after yielding ``after`` records."""

    def __init__(self, after: int) -> None:
        self.after = after

    def imap_unordered(self, fn, runs):
        for index, run in enumerate(runs):
            if index >= self.after:
                raise StopAfter(f"killed after {self.after} records")
            yield fn(run)


class TestIncrementalCheckpointing:
    def test_kill_mid_pass_then_resume_matches_fresh(self, tmp_path):
        """A sweep killed mid-executor-pass leaves a resumable checkpoint, and
        resuming completes to the exact fresh-run records and aggregates."""
        spec = tiny_spec(seeds=3)                      # 6 runs
        fresh = SweepRunner(spec, SerialExecutor()).run()

        path = str(tmp_path / "checkpoint.json")
        with pytest.raises(StopAfter):
            SweepRunner(spec, ExplodingExecutor(after=4)).run(
                save_path=path, checkpoint_every=1)

        partial = SweepResult.load(path)
        assert len(partial.records) == 4               # saved before the crash

        resumed = SweepRunner(spec, SerialExecutor()).run(
            resume_from=path, save_path=path)
        assert records_as_dicts(resumed) == records_as_dicts(fresh)
        for a, b in zip(fresh.aggregate(), resumed.aggregate()):
            assert a.stats == b.stats
        # The final save holds the complete sweep.
        assert len(SweepResult.load(path).records) == spec.n_runs

    def test_crash_without_checkpoint_every_still_saves_progress(self, tmp_path):
        """Even with no periodic interval, completed records are persisted on
        an executor error (the finally-save kill protection)."""
        spec = tiny_spec(seeds=2)                      # 4 runs
        path = str(tmp_path / "on-error.json")
        with pytest.raises(StopAfter):
            SweepRunner(spec, ExplodingExecutor(after=3)).run(save_path=path)
        assert len(SweepResult.load(path).records) == 3

    def test_periodic_checkpoints_written_during_pass(self, tmp_path, monkeypatch):
        saves = []
        original = SweepResult.save

        def counting_save(self, path):
            saves.append(len(self.records))
            original(self, path)

        monkeypatch.setattr(SweepResult, "save", counting_save)
        spec = tiny_spec(seeds=2)                      # 4 runs
        path = str(tmp_path / "periodic.json")
        SweepRunner(spec, SerialExecutor()).run(save_path=path,
                                                checkpoint_every=2)
        # Two periodic saves (after 2 and 4 records) plus the finally-save.
        assert saves == [2, 4, 4]

    def test_checkpoint_every_validation(self, tmp_path):
        path = str(tmp_path / "x.json")
        with pytest.raises(ValueError, match="checkpoint_every"):
            SweepRunner(tiny_spec(), SerialExecutor()).run(save_path=path,
                                                           checkpoint_every=0)
        # Checkpointing without a destination is a silent no-op trap: reject.
        with pytest.raises(ValueError, match="save_path"):
            SweepRunner(tiny_spec(), SerialExecutor()).run(checkpoint_every=5)

    def test_pool_imap_streams_and_matches_serial(self, tmp_path):
        spec = tiny_spec(seeds=2)
        serial = SweepRunner(spec, SerialExecutor()).run()
        path = str(tmp_path / "pool.json")
        pool = SweepRunner(spec, PoolExecutor(processes=2, chunksize=1)).run(
            save_path=path, checkpoint_every=1)
        assert records_as_dicts(pool) == records_as_dicts(serial)
        assert records_as_dicts(SweepResult.load(path)) == records_as_dicts(serial)

    def test_serial_imap_unordered_streams_lazily(self):
        spec = tiny_spec()
        runs = spec.expand()
        iterator = SerialExecutor().imap_unordered(execute_run, runs)
        first = next(iterator)
        assert first.run_id == runs[0].run_id          # nothing else ran yet


class TestPrebuildStartMethods:
    def test_prebuild_under_spawn_warns_and_warms_parent(self):
        import multiprocessing

        from repro.sweep.builders import _CACHE

        workload = WorkloadSpec(builder="synthetic", groups=2,
                                macros_per_group=2, banks=4, rows=8,
                                n_operators=2, label="prebuild-spawn")
        runs = tiny_spec(workloads=(workload,)).expand()
        executor = PoolExecutor(prebuild=True, start_method="spawn")
        context = multiprocessing.get_context("spawn")
        with pytest.warns(RuntimeWarning, match="cannot inherit"):
            executor._maybe_prebuild(context, runs)
        assert workload in _CACHE                      # parent cache is warm

    def test_prebuild_under_fork_does_not_warn(self):
        import multiprocessing
        import warnings as warnings_module

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        executor = PoolExecutor(prebuild=True)
        context = multiprocessing.get_context("fork")
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            executor._maybe_prebuild(context, tiny_spec().expand())


class TestSharedSeedMode:
    def test_shared_seeds_equal_across_points(self):
        spec = tiny_spec(seeds=2, seed_mode="shared",
                         controllers=("dvfs", "booster"))
        runs = spec.expand()
        by_seed_index = {}
        for run in runs:
            by_seed_index.setdefault(run.seed_index, set()).add(run.seed)
        # One seed per ensemble member, shared by every grid point ...
        assert all(len(seeds) == 1 for seeds in by_seed_index.values())
        # ... and distinct between members.
        assert len({seeds.pop() for seeds in by_seed_index.values()}) == 2

    def test_shared_differs_from_per_point_derivation(self):
        shared = tiny_spec(seed_mode="shared").expand()
        per_point = tiny_spec().expand()
        assert [r.seed for r in shared] != [r.seed for r in per_point]

    def test_seed_mode_json_roundtrip_and_validation(self):
        spec = tiny_spec(seed_mode="shared")
        assert SweepSpec.from_json_dict(spec.to_json_dict()) == spec
        # Legacy payloads without the field load as per_point.
        payload = tiny_spec().to_json_dict()
        del payload["seed_mode"]
        assert SweepSpec.from_json_dict(payload).seed_mode == "per_point"
        with pytest.raises(ValueError, match="seed_mode"):
            tiny_spec(seed_mode="chaotic")

    def test_shared_mode_sweep_is_deterministic(self):
        spec = tiny_spec(seed_mode="shared")
        a = SweepRunner(spec, SerialExecutor()).run()
        b = SweepRunner(spec, SerialExecutor()).run()
        assert records_as_dicts(a) == records_as_dicts(b)


class TestOperatorRows:
    def test_operator_rows_create_multi_macro_sets(self):
        spec = WorkloadSpec(builder="synthetic", groups=2, macros_per_group=2,
                            banks=4, rows=8, operator_rows=16, n_operators=2,
                            label="two-tile")
        compiled = build_compiled_workload(spec)
        assert len(compiled.tasks) == 4                # two tiles per operator
        set_sizes = {}
        for task in compiled.tasks:
            set_sizes[task.set_id] = set_sizes.get(task.set_id, 0) + 1
        assert sorted(set_sizes.values()) == [2, 2]

    def test_default_operator_rows_single_tile(self):
        compiled = build_compiled_workload(TINY)
        assert len(compiled.tasks) == TINY.n_operators


class MapOnlyExecutor:
    """An executor written against the pre-streaming contract (map only)."""

    def map(self, fn, runs):
        return [fn(run) for run in runs]


def test_map_only_executor_still_works(tmp_path):
    """Custom executors without imap_unordered keep working (checkpointing
    degrades to the end-of-pass save)."""
    spec = tiny_spec()
    path = str(tmp_path / "maponly.json")
    legacy = SweepRunner(spec, MapOnlyExecutor()).run(save_path=path)
    serial = SweepRunner(spec, SerialExecutor()).run()
    assert records_as_dicts(legacy) == records_as_dicts(serial)
    assert len(SweepResult.load(path).records) == spec.n_runs


# --------------------------------------------------------------------- #
# retry backoff jitter
# --------------------------------------------------------------------- #
class TestRetryBackoffJitter:
    def test_first_attempt_and_zero_backoff_never_wait(self):
        policy = RetryPolicy(backoff=1.0, jitter="decorrelated")
        assert policy.delay_before(1, "t/p0000/s000") == 0.0
        assert RetryPolicy(jitter="decorrelated").delay_before(5, "x") == 0.0

    def test_linear_ramp_is_the_default_and_unchanged(self):
        policy = RetryPolicy(backoff=0.5)
        assert policy.delay_before(2) == 0.5
        assert policy.delay_before(4) == 1.5
        assert policy.max_delay_before(4) == 1.5

    def test_decorrelated_is_deterministic_and_salted(self):
        policy = RetryPolicy(backoff=0.2, jitter="decorrelated",
                             jitter_salt=3)
        delay = policy.delay_before(3, "t/p0001/s000")
        assert delay == policy.delay_before(3, "t/p0001/s000")
        salted = RetryPolicy(backoff=0.2, jitter="decorrelated",
                             jitter_salt=4)
        assert salted.delay_before(3, "t/p0001/s000") != delay

    def test_decorrelated_decorrelates_across_runs(self):
        policy = RetryPolicy(backoff=0.2, jitter="decorrelated")
        delays = {policy.delay_before(2, f"t/p{i:04d}/s000")
                  for i in range(8)}
        assert len(delays) == 8      # no retry lockstep across the fleet

    def test_decorrelated_is_bounded(self):
        policy = RetryPolicy(backoff=0.2, jitter="decorrelated",
                             max_backoff=1.0)
        for attempt in range(2, 8):
            for token in ("a", "b", "c"):
                delay = policy.delay_before(attempt, token)
                assert policy.backoff <= delay <= policy.max_backoff
                assert delay <= policy.max_delay_before(attempt)

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter="full")
        with pytest.raises(ValueError):
            RetryPolicy(max_backoff=0.0)


# --------------------------------------------------------------------- #
# streaming progress + cooperative stop (the service layer's hooks)
# --------------------------------------------------------------------- #
class TestProgressStreaming:
    def test_progress_snapshots_stream_per_record(self, tmp_path):
        path = str(tmp_path / "p.json")
        snapshots = []
        result = SweepRunner(tiny_spec(), SerialExecutor()).run(
            save_path=path, checkpoint_every=2, progress=snapshots.append)
        assert [s.completed for s in snapshots] == [1, 2, 3, 4]
        assert all(s.total == 4 and s.failed == 0 for s in snapshots)
        assert [s.checkpointed for s in snapshots] == \
            [False, True, False, True]
        assert snapshots[-1].records == len(result.records) == 4
        assert all(s.runs_per_s >= 0 for s in snapshots)

    def test_checkpointed_flag_means_the_file_is_durable(self, tmp_path):
        path = str(tmp_path / "p.json")
        seen = []

        def probe(progress):
            if progress.checkpointed:
                seen.append(len(SweepResult.load(path).records))

        SweepRunner(tiny_spec(), SerialExecutor()).run(
            save_path=path, checkpoint_every=1, progress=probe)
        assert seen == [1, 2, 3, 4]

    def test_should_stop_drains_and_resume_completes(self, tmp_path):
        path = str(tmp_path / "p.json")
        fresh = SweepRunner(tiny_spec(), SerialExecutor()).run()
        completed = []
        partial = SweepRunner(tiny_spec(), SerialExecutor()).run(
            save_path=path, checkpoint_every=1,
            progress=lambda s: completed.append(s.completed),
            should_stop=lambda: len(completed) >= 2)
        assert len(partial.records) == 2
        assert len(SweepResult.load(path).records) == 2
        resumed = SweepRunner(tiny_spec(), SerialExecutor()).run(
            resume_from=path)
        assert [r.to_json_dict() for r in resumed.sorted_records()] == \
            [r.to_json_dict() for r in fresh.sorted_records()]
