"""Tests for workload profiles, the compiler, the runtime, and tracing."""

import numpy as np
import pytest

from repro.core.ir_booster import BoosterMode
from repro.models import gpt2, resnet18, vit
from repro.pim.config import small_chip_config
from repro.power.vf_table import VFTable
from repro.sim import (
    CompilerConfig,
    RuntimeConfig,
    compile_workload,
    profile_operator_rtog,
    profile_task_rtog,
    rtog_histogram,
    schedule_operators,
    simulate,
)
from repro.workloads import (
    ActivationStreamGenerator,
    MIXED_OPERATOR_COMBOS,
    WorkloadProfile,
    build_workload_profile,
    classify_layer_kind,
    dataset_activation_stats,
    flip_factor_sequence,
    mixed_operator_workload,
)

from tests.helpers import make_operator


class TestGenerators:
    def test_flip_sequence_statistics(self):
        seq = flip_factor_sequence(5000, mean=0.6, std=0.15, correlation=0.7, seed=0)
        assert seq.shape == (5000,)
        assert 0.5 < seq.mean() < 0.7
        assert np.all((seq >= 0.05) & (seq <= 1.0))

    def test_flip_sequence_correlation(self):
        correlated = flip_factor_sequence(2000, correlation=0.9, seed=1)
        independent = flip_factor_sequence(2000, correlation=0.0, seed=1)
        def lag1(x):
            return np.corrcoef(x[:-1], x[1:])[0, 1]
        assert lag1(correlated) > lag1(independent)

    def test_flip_sequence_validation(self):
        with pytest.raises(ValueError):
            flip_factor_sequence(10, correlation=1.5)
        assert flip_factor_sequence(0).size == 0

    def test_activation_generator_range_and_determinism(self):
        gen = ActivationStreamGenerator(rows=16, input_bits=4, std=1.0, seed=3)
        a = gen.generate(10)
        b = ActivationStreamGenerator(rows=16, input_bits=4, std=1.0, seed=3).generate(10)
        assert a.shape == (10, 16)
        assert np.array_equal(a, b)
        assert a.max() <= 7 and a.min() >= -8

    @staticmethod
    def _loop_reference_codes(gen: ActivationStreamGenerator, waves: int) -> np.ndarray:
        """The historical per-wave AR(1) Python loop the lfilter port replaced."""
        rng = np.random.default_rng(gen.seed)
        qmax = (1 << (gen.input_bits - 1)) - 1
        scale = max(3.0 * gen.std, 1e-9) / qmax
        values = np.empty((waves, gen.rows))
        current = rng.normal(gen.mean, gen.std, size=gen.rows)
        values[0] = current
        for wave in range(1, waves):
            noise = rng.normal(0.0, gen.std * np.sqrt(1 - gen.correlation ** 2),
                               size=gen.rows)
            current = gen.mean + gen.correlation * (current - gen.mean) + noise
            values[wave] = current
        return np.clip(np.round(values / scale), -qmax - 1, qmax).astype(np.int64)

    @pytest.mark.parametrize("mean,std,correlation,bits", [
        (0.0, 1.0, 0.5, 8),      # the default configuration of every caller
        (0.0, 2.0, 0.9, 4),
        (1.3, 0.7, 0.5, 8),      # non-zero mean exercises the zi deviation path
        (-0.4, 1.5, 0.0, 6),     # correlation 0: lfilter degenerates to the noise
        (2.0, 1.0, 0.95, 8),
    ])
    def test_activation_generator_bit_equivalent_to_loop(self, mean, std,
                                                         correlation, bits):
        for seed in (0, 7, 123):
            gen = ActivationStreamGenerator(rows=16, input_bits=bits, mean=mean,
                                            std=std, correlation=correlation,
                                            seed=seed)
            assert np.array_equal(gen.generate(150),
                                  self._loop_reference_codes(gen, 150))

    def test_dataset_activation_stats(self):
        mean, std = dataset_activation_stats(np.array([1.0, 3.0]))
        assert mean == 2.0 and std > 0


class TestProfiles:
    def test_classify_layer_kinds(self):
        model = vit(image_size=16, patch_size=4, dim=16, depth=1)
        kinds = {classify_layer_kind(name, layer) for name, layer in model.weight_layers()}
        assert {"conv", "qkv", "proj", "linear"}.issubset(kinds)

    def test_build_profile_includes_attention_matmuls(self):
        model = vit(image_size=16, patch_size=4, dim=16, depth=2)
        profile = build_workload_profile(model, "vit", "transformer")
        kinds = {op.kind for op in profile.operators}
        assert "qk_t" in kinds and "sv" in kinds
        assert len(profile.input_determined_operators) == 4      # 2 blocks x (qk_t, sv)
        assert 0.0 < profile.mean_hamming_rate < 1.0
        assert profile.max_hamming_rate >= profile.mean_hamming_rate

    def test_build_profile_conv_model_has_no_attention_ops(self):
        model = resnet18(base_width=4)
        profile = build_workload_profile(model, "resnet18", "conv")
        assert profile.input_determined_operators == []

    def test_build_profile_uses_supplied_codes(self):
        model = gpt2(vocab_size=16, dim=16, depth=1)
        name, layer = model.weight_layers()[0]
        codes = {name: np.zeros(layer.weight.shape, dtype=np.int64)}
        profile = build_workload_profile(model, "gpt2", "transformer", codes_by_layer=codes,
                                         include_attention_matmuls=False)
        first = next(op for op in profile.operators if op.name == name)
        assert first.hamming_rate == 0.0

    def test_build_profile_rejects_wrong_code_shape(self):
        model = gpt2(vocab_size=16, dim=16, depth=1)
        name, _ = model.weight_layers()[0]
        with pytest.raises(ValueError):
            build_workload_profile(model, "gpt2", "transformer",
                                   codes_by_layer={name: np.zeros((2, 2), dtype=np.int64)})

    def test_mixed_operator_workloads(self):
        conv_profile = WorkloadProfile(name="conv", family="conv", operators=[
            make_operator("c0", 8, 4, kind="conv", seed=0),
            make_operator("c1", 8, 4, kind="conv", seed=1),
            make_operator("l0", 8, 4, kind="linear", seed=2),
        ])
        transformer_profile = WorkloadProfile(name="tr", family="transformer", operators=[
            make_operator("qkv0", 8, 4, kind="qkv", seed=3),
            make_operator("qkt0", 8, 4, kind="qk_t", seed=4),
            make_operator("sv0", 8, 4, kind="sv", seed=5),
        ])
        for combo in MIXED_OPERATOR_COMBOS:
            mixed = mixed_operator_workload(combo, conv_profile, transformer_profile,
                                            operators_per_kind=1)
            assert mixed.family == "mixed"
            assert len(mixed.operators) == 2
        with pytest.raises(KeyError):
            mixed_operator_workload("conv+pool", conv_profile, transformer_profile)


class TestCompiler:
    def test_compile_loads_chip_and_computes_group_hr(self, synthetic_profile,
                                                      tiny_chip_config, vf_table):
        compiled = compile_workload(synthetic_profile, tiny_chip_config, vf_table,
                                    CompilerConfig(mapping_strategy="sequential",
                                                   max_tasks_per_operator=1))
        assert len(compiled.tasks) == 4
        assert compiled.mapping.strategy == "sequential"
        loaded = compiled.chip.loaded_macro_indices()
        assert len(loaded) == 4
        assert set(compiled.group_hr) == {0, 1}
        # The qk_t operator marks its group as input-determined -> safe level 100.
        qkt_task = next(t for t in compiled.tasks if t.kind == "qk_t")
        gid, _ = tiny_chip_config.macro_location(compiled.mapping.macro_of(qkt_task.task_id))
        assert compiled.group_input_determined[gid]
        assert compiled.group_safe_levels[gid] == 100

    def test_compile_applies_wds(self, synthetic_profile, tiny_chip_config, vf_table):
        plain = compile_workload(synthetic_profile, tiny_chip_config, vf_table,
                                 CompilerConfig(wds_delta=None, max_tasks_per_operator=1,
                                                mapping_strategy="sequential"))
        shifted = compile_workload(synthetic_profile, tiny_chip_config, vf_table,
                                   CompilerConfig(wds_delta=8, max_tasks_per_operator=1,
                                                  mapping_strategy="sequential"))
        conv_plain = [t for t in plain.tasks if t.kind == "conv"]
        conv_shifted = [t for t in shifted.tasks if t.kind == "conv"]
        assert all(t.wds_delta == 0 for t in conv_plain)
        assert all(t.wds_delta == 8 for t in conv_shifted)
        # Input-determined operators never get WDS.
        assert all(t.wds_delta == 0 for t in shifted.tasks if t.input_determined)
        assert np.mean([t.hamming_rate for t in conv_shifted]) < \
            np.mean([t.hamming_rate for t in conv_plain])

    def test_compile_downsamples_oversized_workloads(self, tiny_chip_config, vf_table):
        operators = [make_operator(f"op{i}", 32, 16, seed=i) for i in range(6)]
        profile = WorkloadProfile(name="big", family="conv", operators=operators)
        compiled = compile_workload(profile, tiny_chip_config, vf_table,
                                    CompilerConfig(mapping_strategy="sequential"))
        assert len(compiled.tasks) <= tiny_chip_config.total_macros
        assert len({t.set_id for t in compiled.tasks}) >= 2
        compiled.mapping.validate(compiled.tasks)

    def test_scheduler_phases_fit_chip(self, tiny_chip_config):
        operators = [make_operator(f"op{i}", 32, 16, seed=i) for i in range(5)]
        profile = WorkloadProfile(name="big", family="conv", operators=operators)
        schedule = schedule_operators(profile, tiny_chip_config)
        assert schedule.num_phases >= 1
        assert len(schedule.all_operators) == 5
        for phase in schedule.phases[:-1]:
            assert phase.estimated_tiles <= tiny_chip_config.total_macros * 2


class TestRuntime:
    def test_dvfs_vs_booster_low_power(self, compiled_synthetic):
        baseline = simulate(compiled_synthetic,
                            RuntimeConfig(cycles=300, controller="dvfs",
                                          mode=BoosterMode.LOW_POWER, seed=0))
        boosted = simulate(compiled_synthetic,
                           RuntimeConfig(cycles=300, controller="booster",
                                         mode=BoosterMode.LOW_POWER, seed=0))
        # IR-Booster lowers the supply for low-HR groups: less power and less drop.
        assert boosted.average_macro_power_mw < baseline.average_macro_power_mw
        assert boosted.worst_ir_drop < baseline.worst_ir_drop
        assert boosted.efficiency_gain_vs(baseline) > 1.0
        assert baseline.total_failures == 0      # DVFS at the signoff level never fails

    def test_booster_sprint_improves_throughput(self, compiled_synthetic):
        baseline = simulate(compiled_synthetic,
                            RuntimeConfig(cycles=300, controller="dvfs",
                                          mode=BoosterMode.SPRINT, seed=0))
        boosted = simulate(compiled_synthetic,
                           RuntimeConfig(cycles=300, controller="booster",
                                         mode=BoosterMode.SPRINT, seed=0))
        assert boosted.speedup_vs(baseline) > 1.0

    def test_safe_only_controller_never_fails(self, compiled_synthetic):
        result = simulate(compiled_synthetic,
                          RuntimeConfig(cycles=300, controller="booster_safe",
                                        monitor_noise=0.0, seed=1))
        assert result.total_failures == 0
        assert all(g.final_level == g.safe_level for g in result.group_results)

    def test_result_structures(self, compiled_synthetic):
        result = simulate(compiled_synthetic, RuntimeConfig(cycles=120, seed=2))
        assert result.cycles == 120
        assert result.chip_drop_trace.shape == (120,)
        assert len(result.macro_results) == len(compiled_synthetic.mapping.assignment)
        for macro in result.macro_results:
            assert macro.rtog_trace.shape == (120,)
            assert macro.drop_trace.shape == (120,)
            assert 0.0 <= macro.mean_rtog <= 1.0
            assert macro.energy.total_energy > 0
        assert result.effective_tops > 0
        assert result.energy_efficiency_tops_per_watt > 0

    def test_smaller_beta_gives_more_failures(self, compiled_synthetic):
        aggressive = simulate(compiled_synthetic,
                              RuntimeConfig(cycles=400, controller="booster", beta=10,
                                            seed=3))
        conservative = simulate(compiled_synthetic,
                                RuntimeConfig(cycles=400, controller="booster", beta=100,
                                              seed=3))
        assert aggressive.total_failures >= conservative.total_failures

    def test_runtime_config_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(controller="turbo").validate()
        with pytest.raises(ValueError):
            RuntimeConfig(mode="eco").validate()
        with pytest.raises(ValueError):
            RuntimeConfig(cycles=0).validate()


class TestTraceProfiling:
    def test_profile_operator_rtog_respects_hr_bound(self, tiny_macro_config):
        operator = make_operator("conv", 8, 4, seed=0)
        profile = profile_operator_rtog(operator, tiny_macro_config, waves=16)
        assert profile.peak_below_hr
        assert profile.cycles == 16 * tiny_macro_config.bank.input_bits
        assert 0.0 < profile.mean_rtog <= profile.peak_rtog

    def test_wds_task_profile_has_lower_hr(self, tiny_macro_config):
        operator = make_operator("conv", 8, 4, seed=1)
        from repro.pim.dataflow import Task
        plain = Task(task_id=0, operator_name="c", kind="conv", set_id=0,
                     codes=operator.codes, bits=8)
        shifted = Task(task_id=1, operator_name="c", kind="conv", set_id=0,
                       codes=operator.codes, bits=8, wds_delta=8)
        p_plain = profile_task_rtog(plain, tiny_macro_config, waves=12)
        p_shifted = profile_task_rtog(shifted, tiny_macro_config, waves=12)
        assert p_shifted.hamming_rate < p_plain.hamming_rate

    def test_rtog_histogram(self):
        counts, edges = rtog_histogram(np.array([0.1, 0.2, 0.2, 0.5]), bins=10,
                                       value_range=(0, 1))
        assert counts.sum() == 4
        assert edges.shape == (11,)
